//! Task span records.

/// What a core was doing during a span — the paper's task taxonomy plus
/// injected OS noise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanKind {
    /// Panel preprocessing / factorization (task P; red in Figure 4).
    Panel,
    /// Panel L-factor tile (task L).
    LFactor,
    /// U tile of the current block row (task U).
    UFactor,
    /// Trailing-matrix update (task S; green in Figure 4).
    Update,
    /// Injected system noise (excess work δ of §6).
    Noise,
    /// Scheduler overhead (dequeue / steal attempts).
    Overhead,
}

impl SpanKind {
    /// One-character code used in the ASCII renderer.
    pub fn code(&self) -> char {
        match self {
            SpanKind::Panel => 'P',
            SpanKind::LFactor => 'L',
            SpanKind::UFactor => 'U',
            SpanKind::Update => 'S',
            SpanKind::Noise => 'n',
            SpanKind::Overhead => 'o',
        }
    }

    /// Fill color used in the SVG renderer.
    pub fn color(&self) -> &'static str {
        match self {
            SpanKind::Panel => "#d62728",    // red, like Figure 4
            SpanKind::LFactor => "#ff7f0e",  // orange
            SpanKind::UFactor => "#1f77b4",  // blue
            SpanKind::Update => "#2ca02c",   // green, like Figure 4
            SpanKind::Noise => "#7f7f7f",    // grey
            SpanKind::Overhead => "#bcbd22", // olive
        }
    }

    /// Whether the span counts as useful work (vs. noise/overhead).
    pub fn is_work(&self) -> bool {
        matches!(
            self,
            SpanKind::Panel | SpanKind::LFactor | SpanKind::UFactor | SpanKind::Update
        )
    }
}

/// One contiguous interval of activity on a core.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskSpan {
    /// Core index.
    pub core: usize,
    /// Start time (seconds).
    pub start: f64,
    /// End time (seconds).
    pub end: f64,
    /// Activity kind.
    pub kind: SpanKind,
}

impl TaskSpan {
    /// Span duration.
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique() {
        let kinds = [
            SpanKind::Panel,
            SpanKind::LFactor,
            SpanKind::UFactor,
            SpanKind::Update,
            SpanKind::Noise,
            SpanKind::Overhead,
        ];
        let mut codes: Vec<char> = kinds.iter().map(|k| k.code()).collect();
        codes.sort();
        codes.dedup();
        assert_eq!(codes.len(), kinds.len());
    }

    #[test]
    fn work_classification() {
        assert!(SpanKind::Panel.is_work());
        assert!(SpanKind::Update.is_work());
        assert!(!SpanKind::Noise.is_work());
        assert!(!SpanKind::Overhead.is_work());
    }

    #[test]
    fn duration() {
        let s = TaskSpan {
            core: 0,
            start: 1.5,
            end: 4.0,
            kind: SpanKind::Update,
        };
        assert!((s.duration() - 2.5).abs() < 1e-15);
    }
}
