//! SVG timeline rendering, for figures embedded in reports.

use crate::timeline::Timeline;
use std::fmt::Write as _;

/// Pixel geometry of the SVG rendering.
#[derive(Debug, Clone, Copy)]
pub struct SvgOptions {
    /// Plot width in pixels.
    pub width: f64,
    /// Height of one core's lane in pixels.
    pub lane_height: f64,
    /// Vertical gap between lanes.
    pub lane_gap: f64,
}

impl Default for SvgOptions {
    fn default() -> Self {
        Self {
            width: 1000.0,
            lane_height: 14.0,
            lane_gap: 3.0,
        }
    }
}

/// Render the timeline as an SVG document: one horizontal lane per core,
/// one colored rect per span (colors follow the paper's Figure 4 where
/// red = panel, green = update).
pub fn svg(t: &Timeline, opt: SvgOptions) -> String {
    let makespan = t.makespan().max(1e-300);
    let total_h = (opt.lane_height + opt.lane_gap) * t.cores() as f64 + 24.0;
    let mut out = String::new();
    let _ = writeln!(
        out,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{:.0}" height="{:.0}" viewBox="0 0 {:.0} {:.0}">"#,
        opt.width + 60.0,
        total_h,
        opt.width + 60.0,
        total_h
    );
    for core in 0..t.cores() {
        let y = core as f64 * (opt.lane_height + opt.lane_gap) + 4.0;
        let _ = writeln!(
            out,
            r##"<text x="2" y="{:.1}" font-size="10" font-family="monospace">c{}</text>"##,
            y + opt.lane_height - 3.0,
            core
        );
        // lane background (white = idle, as in the paper's figures)
        let _ = writeln!(
            out,
            r##"<rect x="30" y="{y:.1}" width="{:.1}" height="{:.1}" fill="#f4f4f4" stroke="#ccc" stroke-width="0.5"/>"##,
            opt.width, opt.lane_height
        );
    }
    for s in t.spans() {
        let y = s.core as f64 * (opt.lane_height + opt.lane_gap) + 4.0;
        let x = 30.0 + s.start / makespan * opt.width;
        let w = ((s.end - s.start) / makespan * opt.width).max(0.2);
        let _ = writeln!(
            out,
            r##"<rect x="{x:.2}" y="{y:.1}" width="{w:.2}" height="{:.1}" fill="{}"/>"##,
            opt.lane_height,
            s.kind.color()
        );
    }
    out.push_str("</svg>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{SpanKind, TaskSpan};

    #[test]
    fn svg_structure() {
        let mut t = Timeline::new(2);
        t.push(TaskSpan {
            core: 0,
            start: 0.0,
            end: 1.0,
            kind: SpanKind::Panel,
        });
        t.push(TaskSpan {
            core: 1,
            start: 0.5,
            end: 1.0,
            kind: SpanKind::Update,
        });
        let s = svg(&t, SvgOptions::default());
        assert!(s.starts_with("<svg"));
        assert!(s.trim_end().ends_with("</svg>"));
        // 2 lane backgrounds + 2 spans = 4 rects
        assert_eq!(s.matches("<rect").count(), 4);
        assert!(s.contains(SpanKind::Panel.color()));
        assert!(s.contains(SpanKind::Update.color()));
    }

    #[test]
    fn spans_scale_to_width() {
        let mut t = Timeline::new(1);
        t.push(TaskSpan {
            core: 0,
            start: 0.0,
            end: 10.0,
            kind: SpanKind::Update,
        });
        let s = svg(
            &t,
            SvgOptions {
                width: 500.0,
                ..Default::default()
            },
        );
        assert!(s.contains(r#"width="500.00""#));
    }
}
