//! ASCII timeline rendering — the terminal version of Figures 1/4/14/15.

use crate::timeline::Timeline;

/// Render the timeline as one text row per core and `width` time buckets
/// per row. Each bucket shows the code of the activity covering most of
/// it ('P', 'L', 'U', 'S', 'n'oise, 'o'verhead) or '.' when the core was
/// mostly idle.
pub fn ascii(t: &Timeline, width: usize) -> String {
    assert!(width > 0, "width must be positive");
    let mut out = String::new();
    let makespan = t.makespan();
    if makespan == 0.0 {
        out.push_str("(empty timeline)\n");
        return out;
    }
    let dt = makespan / width as f64;
    for core in 0..t.cores() {
        let spans = t.core_spans(core);
        let mut row = String::with_capacity(width + 16);
        row.push_str(&format!("core {core:>3} |"));
        for w in 0..width {
            let (t0, t1) = (w as f64 * dt, (w + 1) as f64 * dt);
            // find dominant activity in [t0, t1)
            let mut best = ('.', 0.0f64);
            for s in &spans {
                let overlap = (s.end.min(t1) - s.start.max(t0)).max(0.0);
                if overlap > best.1 {
                    best = (s.kind.code(), overlap);
                }
            }
            // idle dominates only if total busy overlap < half the bucket
            let busy: f64 = spans
                .iter()
                .map(|s| (s.end.min(t1) - s.start.max(t0)).max(0.0))
                .sum();
            row.push(if busy < 0.5 * dt { '.' } else { best.0 });
        }
        row.push('|');
        out.push_str(&row);
        out.push('\n');
    }
    out.push_str(&format!(
        "          0{}{:.4}s  (P panel, L, U, S update, n noise, o overhead, . idle)\n",
        " ".repeat(width.saturating_sub(8)),
        makespan
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{SpanKind, TaskSpan};

    #[test]
    fn renders_rows_per_core() {
        let mut t = Timeline::new(3);
        t.push(TaskSpan {
            core: 0,
            start: 0.0,
            end: 10.0,
            kind: SpanKind::Panel,
        });
        t.push(TaskSpan {
            core: 1,
            start: 5.0,
            end: 10.0,
            kind: SpanKind::Update,
        });
        let s = ascii(&t, 10);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4); // 3 cores + legend
        assert!(lines[0].contains("PPPPPPPPPP"));
        assert!(lines[1].contains(".....SSSSS"));
        assert!(lines[2].contains(".........."));
    }

    #[test]
    fn idle_beats_sparse_work() {
        let mut t = Timeline::new(1);
        // 1% busy in the middle of a bucket
        t.push(TaskSpan {
            core: 0,
            start: 0.0,
            end: 0.01,
            kind: SpanKind::Update,
        });
        t.push(TaskSpan {
            core: 0,
            start: 0.99,
            end: 1.0,
            kind: SpanKind::Update,
        });
        let s = ascii(&t, 1);
        assert!(s.lines().next().unwrap().contains('.'));
    }

    #[test]
    fn empty_timeline() {
        let s = ascii(&Timeline::new(2), 10);
        assert!(s.contains("empty"));
    }
}
