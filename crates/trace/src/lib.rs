//! Execution timelines and idle-time metrics.
//!
//! The paper's profiling figures (1, 4, 14, 15) are per-core timelines
//! where white space is idle time. This crate records task spans from
//! either the simulator or the real threaded executor and derives the
//! figures' metrics:
//!
//! * per-core busy/idle accounting and overall utilization,
//! * the "fraction of cores that have gone permanently idle by time t"
//!   curve behind the Fig 14 observation ("90% of threads become idle
//!   after only 60% of the total factorization time"),
//! * ASCII and SVG renderings of the timeline.

pub mod metrics;
pub mod render;
pub mod span;
pub mod svg;
pub mod timeline;

pub use metrics::TimelineMetrics;
pub use span::{SpanKind, TaskSpan};
pub use timeline::Timeline;
