//! `calu-serve` — a long-running factorization job service.
//!
//! The paper's hybrid schedule optimizes one factorization; this crate
//! serves *streams* of them. A [`FactorService`] owns one
//! request-persistent worker pool ([`calu_core::pool::ServicePool`])
//! and layers on top of it, in the server/queue/worker split of
//! rust-lang/crater's server:
//!
//! * **admission control** — a bounded total queue depth plus per-class
//!   quotas ([`ServiceConfig`]); over-quota submissions are rejected
//!   with a typed [`ServeError::Busy`] instead of queueing unboundedly;
//! * **priority classes** — [`JobClass::Interactive`] /
//!   [`JobClass::Batch`] / [`JobClass::Background`], served
//!   highest-first with bounded starvation
//!   ([`calu_sched::ClassLanes`]);
//! * **job lifecycle** — `submit → Queued → Running → Done | Failed |
//!   Cancelled`, observable per job through a [`JobHandle`]
//!   ([`JobHandle::wait`] / [`JobHandle::try_status`]) and service-wide
//!   through the completion-order [`FactorService::events`] stream;
//! * **cancellation** of still-queued jobs ([`FactorService::cancel`]);
//! * **deadlines and a watchdog** — a [`JobSpec::with_deadline`] job
//!   that is not terminal when its deadline passes is failed with
//!   [`ServeError::DeadlineExceeded`]; with
//!   [`ServiceConfig::stall_timeout`] set, a running co-operative job
//!   whose task heartbeat stops advancing is failed with a typed
//!   worker-loss error. Either way the pool keeps serving — the
//!   watchdog condemns jobs, never workers;
//! * **graceful drain** — [`FactorService::drain`] stops admission,
//!   finishes everything queued and in flight, and joins the workers;
//!   no job is ever stranded — under fault injection included (lost
//!   workers rescue their static backlog, interrupted co-scheduled
//!   items are requeued whole). `drain` is idempotent and returns a
//!   [`DrainSummary`];
//! * **live reconfigure** — [`FactorService::reconfigure`] swaps the
//!   pool's solver knobs (tile, threads, discipline) under load by
//!   draining into a successor pool: queued jobs carry over with their
//!   [`JobId`], class and deadline intact, in-flight jobs finish on the
//!   old pool, and the event stream runs continuously across the
//!   handover — zero jobs dropped;
//! * **a crash-safe journal** — with [`ServiceConfig::journal`] set,
//!   accepted generator-spec jobs are appended (fsync'd) to a
//!   write-ahead log and marked on completion; a restarted service
//!   replays the incomplete tail and factors it bitwise-identical to an
//!   uninterrupted run (see [`journal`]);
//! * **a TCP front door** — [`net::ServeListener`] speaks a
//!   line-delimited request/response protocol over `std::net` (submit /
//!   status / cancel / drain / stats) with per-connection timeouts,
//!   bounded connection handling with load shedding, and typed error
//!   replies for malformed requests (see [`net`]).
//!
//! Everything is `std` — mutexes, condvars and one mpsc channel; no
//! async runtime, no serde. The facade crate (`calu`) wraps this API as
//! `Solver::serve()` / `Solver::listen()`, mapping [`PoolOutcome`]s
//! into its `Report` type via the [`FactorService::with_report`] hook.

pub mod journal;
pub mod net;

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use calu_core::pool::{JobSink, PoolOutcome, PoolSource, ServicePool};
use calu_core::sync::Mutex;
use calu_core::{CaluConfig, CaluError, KernelSet};
use calu_matrix::DenseMatrix;
pub use calu_sched::JobClass;

pub use journal::JournalConfig;
use journal::{Journal, JournalRecord};
pub use net::{NetConfig, NetStats, ServeListener};

/// Service-assigned job identifier, unique within one service.
pub type JobId = u64;

/// Where a job is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Admitted, waiting in its class lane.
    Queued,
    /// Claimed by a pool worker.
    Running,
    /// Finished; the result is (or was) available on the handle.
    Done,
    /// The factorization failed.
    Failed,
    /// Removed from the queue before any worker claimed it.
    Cancelled,
}

/// Typed service errors.
#[derive(Debug)]
pub enum ServeError {
    /// Admission refused: the queue (or the class's quota) is full.
    /// Back off and resubmit, or wait on an outstanding handle.
    Busy {
        /// The class that was refused.
        class: JobClass,
        /// Jobs currently admitted against the exceeded limit.
        pending: usize,
        /// The exceeded limit itself.
        quota: usize,
        /// How long the service suggests waiting before resubmitting,
        /// derived from the refused backlog's depth relative to the
        /// pool width (deeper backlog → longer hint, capped at 50 ms).
        retry_after_hint: Duration,
    },
    /// The service is draining; no new jobs are admitted.
    ShuttingDown,
    /// The spec failed validation and never reached the pool.
    Invalid(CaluError),
    /// The factorization itself failed.
    Failed(CaluError),
    /// The job was cancelled while queued.
    Cancelled,
    /// The job's [`JobSpec::with_deadline`] passed before it finished;
    /// the watchdog condemned it (cancelled if still queued, its run
    /// failed if in flight). The pool keeps serving other jobs.
    DeadlineExceeded {
        /// The deadline the job was admitted with.
        deadline: Duration,
    },
    /// The service journal could not record the job, so it was not
    /// admitted — admitting it anyway would silently break the
    /// crash-safety contract ([`ServiceConfig::journal`]).
    Journal(std::io::Error),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Busy {
                class,
                pending,
                quota,
                retry_after_hint,
            } => write!(
                f,
                "busy: {pending}/{quota} {class} jobs pending (retry in {retry_after_hint:?})"
            ),
            ServeError::ShuttingDown => write!(f, "service is shutting down"),
            ServeError::Invalid(e) => write!(f, "invalid job spec: {e}"),
            ServeError::Failed(e) => write!(f, "factorization failed: {e}"),
            ServeError::Cancelled => write!(f, "job was cancelled"),
            ServeError::DeadlineExceeded { deadline } => {
                write!(f, "job missed its {deadline:?} deadline")
            }
            ServeError::Journal(e) => write!(f, "journal write failed: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Admission and verification knobs for one [`FactorService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Total jobs admitted but not yet terminal, across all classes.
    pub max_pending: usize,
    /// Per-class pending quotas, indexed by [`JobClass::lane`]
    /// (`[interactive, batch, background]`).
    pub class_quota: [usize; 3],
    /// How many higher-class pops may pass over a waiting lower-class
    /// job before it is served regardless (see
    /// [`calu_sched::ClassLanes`]).
    pub starvation_limit: usize,
    /// Compute a residual and growth factor for every job.
    pub verify: bool,
    /// Watchdog stall detection: a *running co-operative* job whose
    /// task heartbeat has not advanced for this long is condemned with
    /// a typed worker-loss failure ([`ServeError::Failed`] carrying
    /// `CaluError::WorkerLost`). `None` (the default) disables stall
    /// detection; per-job deadlines work either way. Co-scheduled
    /// (small) jobs expose no heartbeat and are exempt.
    pub stall_timeout: Option<Duration>,
    /// Opt-in crash-safe write-ahead log. When set, every accepted
    /// generator-spec job is appended (and fsync'd) before admission
    /// returns, marked on completion, and compacted on drain; a service
    /// rebuilt over the same path replays the incomplete tail (see
    /// [`journal`]). Dense-data jobs are served normally but not
    /// journaled — only seeded generator specs replay deterministically.
    pub journal: Option<JournalConfig>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            max_pending: 256,
            class_quota: [64, 192, 192],
            starvation_limit: 4,
            verify: false,
            stall_timeout: None,
            journal: None,
        }
    }
}

/// What one job factors: dense data moved in, or a seeded generator
/// materialized lazily on the worker that claims the job — plus which
/// algorithm's kernels factor it (CALU by default; see
/// [`with_kernels`](Self::with_kernels)). Per-job validation is
/// dimensional (non-empty, and square for Cholesky); the shared solver
/// knobs are validated once, when the service is built.
#[derive(Debug, Clone)]
pub struct JobSpec {
    source: PoolSource,
    kernels: KernelSet,
    deadline: Option<Duration>,
}

impl JobSpec {
    /// A job over dense data.
    pub fn dense(a: DenseMatrix) -> Self {
        JobSpec {
            source: PoolSource::Dense(a),
            kernels: KernelSet::CaluLu,
            deadline: None,
        }
    }

    /// A job over a seeded uniform generator matrix, materialized on
    /// the worker that claims it.
    pub fn uniform(m: usize, n: usize, seed: u64) -> Self {
        JobSpec {
            source: PoolSource::Uniform { m, n, seed },
            kernels: KernelSet::CaluLu,
            deadline: None,
        }
    }

    /// A tiled-Cholesky job over a seeded SPD generator matrix,
    /// materialized on the worker that claims it.
    pub fn spd_uniform(n: usize, seed: u64) -> Self {
        JobSpec {
            source: PoolSource::SpdUniform { n, seed },
            kernels: KernelSet::Cholesky,
            deadline: None,
        }
    }

    /// A job over any [`PoolSource`], factored with CALU.
    pub fn from_source(source: PoolSource) -> Self {
        JobSpec {
            source,
            kernels: KernelSet::CaluLu,
            deadline: None,
        }
    }

    /// Select which algorithm's kernels factor this job — one service
    /// freely interleaves [`KernelSet::CaluLu`] and
    /// [`KernelSet::Cholesky`] jobs on the same pool.
    pub fn with_kernels(mut self, kernels: KernelSet) -> Self {
        self.kernels = kernels;
        self
    }

    /// Give the job a wall-clock deadline, measured from admission. A
    /// job not terminal when it passes is failed with
    /// [`ServeError::DeadlineExceeded`] by the service watchdog —
    /// cancelled outright if still queued, its co-operative run
    /// condemned if in flight (a co-scheduled job's worker cannot be
    /// interrupted, but the waiter is unblocked with the typed error
    /// all the same).
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// The job's deadline, if any.
    pub fn deadline(&self) -> Option<Duration> {
        self.deadline
    }

    /// `(rows, cols)` of the job's matrix.
    pub fn dims(&self) -> (usize, usize) {
        self.source.dims()
    }

    /// Which algorithm's kernels factor the job.
    pub fn kernels(&self) -> KernelSet {
        self.kernels
    }
}

/// Identity of one admitted job, handed to the report hook.
#[derive(Debug, Clone, Copy)]
pub struct JobInfo {
    /// Service-assigned id.
    pub id: JobId,
    /// Priority class.
    pub class: JobClass,
    /// `(rows, cols)`.
    pub dims: (usize, usize),
    /// Which algorithm's kernels factor the job.
    pub kernels: KernelSet,
}

/// One entry of the completion-order event stream.
#[derive(Debug, Clone, Copy)]
pub struct JobEvent {
    /// Which job.
    pub id: JobId,
    /// Its class.
    pub class: JobClass,
    /// The terminal status it reached.
    pub status: JobStatus,
}

/// What the service-wide event stream carries: one terminal
/// [`JobEvent`] per job, interleaved with service-health notices.
#[derive(Debug, Clone, Copy)]
pub enum ServiceEvent {
    /// A job reached a terminal state.
    Job(JobEvent),
    /// The pool degraded: a worker was lost (its static backlog was
    /// rescued into dynamic queues; the pool keeps serving on the
    /// survivors). Emitted once per loss, with the running total.
    Degraded {
        /// Workers lost since the service was built.
        lost_workers: usize,
    },
    /// [`FactorService::reconfigure`] completed a handover: queued jobs
    /// carried over to a successor pool, in-flight jobs finish on the
    /// old one. Emitted once per reconfigure.
    Reconfigured {
        /// Pool generation after the swap (the initial pool is
        /// generation 0).
        generation: u64,
    },
    /// The service was built over a journal with an incomplete tail and
    /// re-admitted those jobs (see [`FactorService::take_replayed`]).
    JournalReplayed {
        /// How many jobs were replayed.
        jobs: usize,
    },
}

enum CellState<R> {
    Queued,
    Running,
    Done(R),
    Failed(ServeError),
    Cancelled,
    /// The result was consumed by `wait`.
    Taken,
}

struct JobCell<R> {
    state: Mutex<CellState<R>>,
    cv: Condvar,
}

/// A claim on one submitted job: poll it with
/// [`try_status`](Self::try_status), block on it with
/// [`wait`](Self::wait).
pub struct JobHandle<R = PoolOutcome> {
    id: JobId,
    class: JobClass,
    dims: (usize, usize),
    kernels: KernelSet,
    cell: Arc<JobCell<R>>,
}

impl<R> fmt::Debug for JobHandle<R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JobHandle")
            .field("id", &self.id)
            .field("class", &self.class)
            .field("dims", &self.dims)
            .field("status", &self.try_status())
            .finish()
    }
}

impl<R> JobHandle<R> {
    /// The service-assigned job id.
    pub fn id(&self) -> JobId {
        self.id
    }

    /// The class the job was admitted under.
    pub fn class(&self) -> JobClass {
        self.class
    }

    /// `(rows, cols)` of the job's matrix.
    pub fn dims(&self) -> (usize, usize) {
        self.dims
    }

    /// Which algorithm's kernels factor the job.
    pub fn kernels(&self) -> KernelSet {
        self.kernels
    }

    /// Current lifecycle position, without blocking.
    pub fn try_status(&self) -> JobStatus {
        match &*self.cell.state.lock() {
            CellState::Queued => JobStatus::Queued,
            CellState::Running => JobStatus::Running,
            CellState::Done(_) | CellState::Taken => JobStatus::Done,
            CellState::Failed(_) => JobStatus::Failed,
            CellState::Cancelled => JobStatus::Cancelled,
        }
    }

    /// Block until the job reaches a terminal state and take its
    /// result.
    pub fn wait(self) -> Result<R, ServeError> {
        let mut st = self.cell.state.lock();
        while let CellState::Queued | CellState::Running = &*st {
            st = self.cell.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        match std::mem::replace(&mut *st, CellState::Taken) {
            CellState::Done(r) => Ok(r),
            CellState::Failed(e) => Err(e),
            CellState::Cancelled => Err(ServeError::Cancelled),
            _ => unreachable!("wait consumes the handle"),
        }
    }

    /// [`wait`](Self::wait), bounded: blocks at most `timeout`. On
    /// expiry the handle comes back in `Err` so the caller can keep
    /// polling, re-wait, or cancel — the job itself is unaffected (use
    /// [`JobSpec::with_deadline`] to bound the *job*, not just the
    /// wait).
    pub fn wait_timeout(self, timeout: Duration) -> Result<Result<R, ServeError>, Self> {
        let deadline = Instant::now() + timeout;
        let mut st = self.cell.state.lock();
        while let CellState::Queued | CellState::Running = &*st {
            let now = Instant::now();
            if now >= deadline {
                drop(st);
                return Err(self);
            }
            st = self
                .cell
                .cv
                .wait_timeout(st, deadline - now)
                .unwrap_or_else(|e| e.into_inner())
                .0;
        }
        Ok(match std::mem::replace(&mut *st, CellState::Taken) {
            CellState::Done(r) => Ok(r),
            CellState::Failed(e) => Err(e),
            CellState::Cancelled => Err(ServeError::Cancelled),
            _ => unreachable!("a terminal wait consumes the handle"),
        })
    }
}

struct Admission {
    /// Admitted-but-not-terminal, total and per lane.
    pending_total: usize,
    pending: [usize; 3],
    draining: bool,
    next_id: JobId,
}

/// The result constructor a service applies to every finished job's
/// pool outcome (see [`FactorService::with_report`]).
type MakeResult<R> = Box<dyn Fn(&JobInfo, PoolOutcome) -> R + Send + Sync>;

/// One job the watchdog keeps an eye on: a deadline, a heartbeat
/// history, or both.
struct WatchEntry<R> {
    info: JobInfo,
    cell: Arc<JobCell<R>>,
    /// Absolute deadline (admission time + the spec's deadline), with
    /// the spec's relative deadline kept for the error message.
    deadline: Option<(Instant, Duration)>,
    /// Last observed `(heartbeat, when)` for stall detection; `None`
    /// until the job's co-operative run publishes its first sample.
    last: Option<(u64, Instant)>,
}

/// The service's pool set: one current pool plus any predecessors
/// still finishing their in-flight tail after a reconfigure.
struct Pools {
    current: Arc<ServicePool>,
    /// Retiring pools, oldest first; each is removed by its background
    /// drainer once its tail is done.
    retiring: Vec<Arc<ServicePool>>,
    /// Bumped by every successful reconfigure; the initial pool is 0.
    generation: u64,
}

/// State shared between the service, its sinks, its handles and the
/// watchdog thread.
///
/// Lock order (outer → inner): `admission → pools → tx/journal`. The
/// sink side never holds `watch` across `admission` (ABBA with
/// `submit`'s admission → watch order).
struct Inner<R> {
    admission: Mutex<Admission>,
    pools: Mutex<Pools>,
    make: MakeResult<R>,
    tx: Mutex<Option<mpsc::Sender<ServiceEvent>>>,
    rx: Mutex<Option<mpsc::Receiver<ServiceEvent>>>,
    /// Jobs under watchdog surveillance. Never held across the
    /// admission lock by the sink side (ABBA with `submit`'s
    /// admission → watch order).
    watch: Mutex<Vec<WatchEntry<R>>>,
    /// Tells the watchdog thread to exit.
    shutdown: AtomicBool,
    /// Write-ahead log, when [`ServiceConfig::journal`] is set.
    journal: Option<Journal>,
    /// Lifetime terminal-state counters behind [`DrainSummary`].
    completed: AtomicU64,
    cancelled: AtomicU64,
}

impl<R> Inner<R> {
    /// The pool new submissions go to.
    fn current_pool(&self) -> Arc<ServicePool> {
        Arc::clone(&self.pools.lock().current)
    }

    /// Current pool plus every retiring pool still finishing its tail —
    /// the set the watchdog and `cancel` must consult, since a job may
    /// live on any of them across a handover.
    fn all_pools(&self) -> Vec<Arc<ServicePool>> {
        let p = self.pools.lock();
        let mut all = Vec::with_capacity(1 + p.retiring.len());
        all.push(Arc::clone(&p.current));
        all.extend(p.retiring.iter().cloned());
        all
    }

    /// One job left the pending set (terminal state reached).
    fn job_ended(&self, info: &JobInfo, status: JobStatus) {
        {
            let mut adm = self.admission.lock();
            adm.pending_total -= 1;
            adm.pending[info.class.lane()] -= 1;
        }
        if status == JobStatus::Cancelled {
            self.cancelled.fetch_add(1, Ordering::Relaxed);
        } else {
            self.completed.fetch_add(1, Ordering::Relaxed);
        }
        // best effort: a missed completion marker only means replay
        // re-runs an already-finished job, which is deterministic and
        // harmless; failing the *job* over it would not be
        if let Some(j) = &self.journal {
            let _ = j.append_end(info.id);
        }
        if let Some(tx) = &*self.tx.lock() {
            let _ = tx.send(ServiceEvent::Job(JobEvent {
                id: info.id,
                class: info.class,
                status,
            }));
        }
    }

    /// Watchdog-side terminal transition: first writer wins against the
    /// job's sink. `false` means the job went terminal first and
    /// nothing was done.
    fn condemn(&self, info: &JobInfo, cell: &JobCell<R>, err: ServeError) -> bool {
        {
            let mut st = cell.state.lock();
            if !matches!(*st, CellState::Queued | CellState::Running) {
                return false;
            }
            *st = CellState::Failed(err);
        }
        cell.cv.notify_all();
        self.job_ended(info, JobStatus::Failed);
        true
    }
}

/// Routes one job's pool outcome into its handle and the event stream.
struct ServeSink<R> {
    info: JobInfo,
    cell: Arc<JobCell<R>>,
    shared: Arc<Inner<R>>,
}

impl<R: Send + 'static> JobSink for ServeSink<R> {
    fn started(&self) {
        // idempotent on purpose: a job requeued after a mid-item worker
        // loss is claimed (and `started`) a second time
        let mut st = self.cell.state.lock();
        if matches!(*st, CellState::Queued) {
            *st = CellState::Running;
        }
    }

    fn finished(self: Box<Self>, res: Result<PoolOutcome, CaluError>) {
        // leave the watchdog's registry first (lock not held onward)
        self.shared
            .watch
            .lock()
            .retain(|e| e.info.id != self.info.id);
        let (state, status) = match res {
            Ok(out) => (
                CellState::Done((self.shared.make)(&self.info, out)),
                JobStatus::Done,
            ),
            Err(e) => (CellState::Failed(ServeError::Failed(e)), JobStatus::Failed),
        };
        {
            let mut st = self.cell.state.lock();
            if !matches!(*st, CellState::Queued | CellState::Running) {
                // the watchdog condemned this job first (deadline or
                // stall) and already accounted for it; the pool-side
                // result is discarded
                return;
            }
            *st = state;
        }
        self.cell.cv.notify_all();
        self.shared.job_ended(&self.info, status);
    }
}

/// Service-wide event stream; ends when the service drains. Blocks on
/// [`Iterator::next`] until the next event: one terminal
/// [`ServiceEvent::Job`] per job in completion order, interleaved with
/// [`ServiceEvent::Degraded`] notices when fault injection costs the
/// pool a worker.
pub struct Events {
    rx: mpsc::Receiver<ServiceEvent>,
}

impl Events {
    /// Non-blocking poll: the next event if one is ready, `None` when
    /// the stream is momentarily empty *or* has ended (distinguish via
    /// the blocking iterator if it matters). Network pollers use this
    /// so draining the stream never blocks an accept loop.
    pub fn try_recv(&self) -> Option<ServiceEvent> {
        self.rx.try_recv().ok()
    }
}

impl Iterator for Events {
    type Item = ServiceEvent;
    fn next(&mut self) -> Option<ServiceEvent> {
        self.rx.recv().ok()
    }
}

/// What [`FactorService::drain`] accomplished over the service's whole
/// lifetime. Returned by every `drain` call (idempotent: later calls
/// return the same summary instead of silently double-draining).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrainSummary {
    /// Jobs that ran to a result — [`JobStatus::Done`] or
    /// [`JobStatus::Failed`] (deadline/stall condemnations included).
    pub completed: u64,
    /// Jobs cancelled while still queued.
    pub cancelled: u64,
}

/// How often the watchdog wakes to check deadlines, heartbeats and
/// pool degradation.
const WATCHDOG_TICK: Duration = Duration::from_millis(2);

/// The watchdog loop: every tick, emit [`ServiceEvent::Degraded`] on a
/// new worker loss, fail jobs past their deadline, and fail running
/// co-operative jobs whose heartbeat stalled. Jobs are condemned
/// first-writer-wins against their sink, so a normal finish racing the
/// watchdog resolves cleanly either way.
fn watchdog_loop<R: Send + 'static>(shared: Arc<Inner<R>>, stall: Option<Duration>) {
    let mut last_lost = 0usize;
    while !shared.shutdown.load(Ordering::Acquire) {
        std::thread::sleep(WATCHDOG_TICK);
        // across a reconfigure a job may live on the current pool or a
        // retiring one; the watchdog polices all of them
        let pools = shared.all_pools();
        let lost: usize = pools.iter().map(|p| p.lost_workers()).sum();
        if lost > last_lost {
            last_lost = lost;
            if let Some(tx) = &*shared.tx.lock() {
                let _ = tx.send(ServiceEvent::Degraded { lost_workers: lost });
            }
        }
        let now = Instant::now();
        // decide under the watch lock, act after releasing it: condemn
        // takes the cell and admission locks, which the sink side takes
        // without holding `watch`
        let mut condemned: Vec<(JobInfo, Arc<JobCell<R>>, ServeError)> = Vec::new();
        {
            let mut watch = shared.watch.lock();
            watch.retain_mut(|e| {
                let running = match &*e.cell.state.lock() {
                    CellState::Queued => false,
                    CellState::Running => true,
                    _ => return false, // terminal: stop watching
                };
                if let Some((at, rel)) = e.deadline {
                    if now >= at {
                        condemned.push((
                            e.info,
                            Arc::clone(&e.cell),
                            ServeError::DeadlineExceeded { deadline: rel },
                        ));
                        return false;
                    }
                }
                if let (true, Some(limit)) = (running, stall) {
                    // co-scheduled or not yet published jobs have no
                    // heartbeat to judge by
                    if let Some(hb) = pools.iter().find_map(|p| p.progress_of(e.info.id)) {
                        match e.last {
                            Some((prev, since)) if hb == prev => {
                                if now.duration_since(since) >= limit {
                                    condemned.push((
                                        e.info,
                                        Arc::clone(&e.cell),
                                        ServeError::Failed(CaluError::WorkerLost(format!(
                                            "no task progress for {limit:?} \
                                             (heartbeat stuck at {hb})"
                                        ))),
                                    ));
                                    return false;
                                }
                            }
                            _ => e.last = Some((hb, now)),
                        }
                    }
                }
                true
            });
        }
        for (info, cell, err) in condemned {
            // remove a still-queued victim from the lanes (sink comes
            // back uncalled and is dropped); then the terminal write
            let _ = pools.iter().find_map(|p| p.cancel(info.id));
            if shared.condemn(&info, &cell, err) {
                // stop the pool wasting work on a condemned run; the
                // error lands in a sink that finds the cell terminal
                // and discards it
                for p in &pools {
                    p.fail_active(
                        info.id,
                        CaluError::WorkerLost("run condemned by the service watchdog".into()),
                    );
                }
            }
        }
    }
}

/// A long-running factorization job service over one persistent worker
/// pool. Generic over the per-job report type `R`: the identity
/// service ([`FactorService::new`]) returns raw [`PoolOutcome`]s, the
/// `calu` facade injects a `Report` builder via
/// [`FactorService::with_report`].
pub struct FactorService<R = PoolOutcome> {
    cfg: ServiceConfig,
    shared: Arc<Inner<R>>,
    watchdog: Mutex<Option<JoinHandle<()>>>,
    /// Background drainers for retiring pools, one per reconfigure;
    /// joined by `drain`.
    drainers: Mutex<Vec<JoinHandle<()>>>,
    /// Memoized drain result — the idempotence guard.
    drained: Mutex<Option<DrainSummary>>,
    /// Handles of journal-replayed jobs, takeable once.
    replayed: Mutex<Vec<JobHandle<R>>>,
}

impl FactorService<PoolOutcome> {
    /// Spawn a service whose jobs resolve to raw [`PoolOutcome`]s.
    /// `cfg` carries the solver knobs every job shares (tile size,
    /// threads, layout, dratio, small cutoff); it is validated here,
    /// once — jobs only vary in dims and data.
    pub fn new(cfg: &CaluConfig, svc: ServiceConfig) -> Result<Self, CaluError> {
        FactorService::with_report(cfg, svc, |_, out| out)
    }
}

impl<R: Send + 'static> FactorService<R> {
    /// [`new`](FactorService::new) with a report hook: every completed
    /// job's [`PoolOutcome`] is mapped through `make` (on the worker
    /// that finished it) before landing in the handle.
    pub fn with_report(
        cfg: &CaluConfig,
        svc: ServiceConfig,
        make: impl Fn(&JobInfo, PoolOutcome) -> R + Send + Sync + 'static,
    ) -> Result<Self, CaluError> {
        let pool = Arc::new(ServicePool::spawn(cfg, svc.verify, svc.starvation_limit)?);
        // open the journal (compacting it to its incomplete tail) before
        // anything can be admitted; replay happens below, after the
        // watchdog is live, so replayed deadlines are enforced too
        let (journal, backlog) = match &svc.journal {
            Some(jc) => {
                let (j, backlog) = Journal::open(jc).map_err(|e| {
                    CaluError::InvalidConfig(format!(
                        "cannot open service journal {}: {e}",
                        jc.path.display()
                    ))
                })?;
                (Some(j), backlog)
            }
            None => (None, Vec::new()),
        };
        let (tx, rx) = mpsc::channel();
        let shared = Arc::new(Inner {
            admission: Mutex::new(Admission {
                pending_total: 0,
                pending: [0; 3],
                draining: false,
                // replayed jobs keep their original ids; fresh ids
                // continue strictly above everything the journal saw
                next_id: backlog.iter().map(|r| r.id + 1).max().unwrap_or(1),
            }),
            pools: Mutex::new(Pools {
                current: pool,
                retiring: Vec::new(),
                generation: 0,
            }),
            make: Box::new(make),
            tx: Mutex::new(Some(tx)),
            rx: Mutex::new(Some(rx)),
            watch: Mutex::new(Vec::new()),
            shutdown: AtomicBool::new(false),
            journal,
            completed: AtomicU64::new(0),
            cancelled: AtomicU64::new(0),
        });
        let watchdog = {
            let shared = Arc::clone(&shared);
            let stall = svc.stall_timeout;
            std::thread::Builder::new()
                .name("calu-serve-watchdog".into())
                .spawn(move || watchdog_loop(shared, stall))
                .expect("spawn watchdog thread")
        };
        let service = FactorService {
            cfg: svc,
            shared,
            watchdog: Mutex::new(Some(watchdog)),
            drainers: Mutex::new(Vec::new()),
            drained: Mutex::new(None),
            replayed: Mutex::new(Vec::new()),
        };
        // replay the journal's incomplete tail: same ids, classes,
        // kernels, generator specs — quota checks are bypassed (these
        // jobs were admitted once already) and the records are already
        // on disk, so they are not re-journaled
        if !backlog.is_empty() {
            let mut handles = Vec::with_capacity(backlog.len());
            for rec in backlog {
                let (spec, class, id) = rec.into_spec();
                match service.admit(spec, class, Some(id)) {
                    Ok(h) => handles.push(h),
                    // a record that parsed but no longer validates is
                    // dropped, not fatal: the journal outlived the
                    // config that accepted it
                    Err(_) => continue,
                }
            }
            let n = handles.len();
            *service.replayed.lock() = handles;
            if n > 0 {
                if let Some(tx) = &*service.shared.tx.lock() {
                    let _ = tx.send(ServiceEvent::JournalReplayed { jobs: n });
                }
            }
        }
        Ok(service)
    }

    /// Handles for the jobs [`ServiceConfig::journal`] replay
    /// re-admitted when this service was built, takeable once (empty
    /// without a journal, on a clean journal, or on a second take).
    /// They carry the same [`JobId`]s the crashed run assigned.
    pub fn take_replayed(&self) -> Vec<JobHandle<R>> {
        std::mem::take(&mut *self.replayed.lock())
    }

    /// Admit one job. Fails fast — [`ServeError::Invalid`] for an
    /// empty-dimension spec (which never reaches the pool),
    /// [`ServeError::Busy`] when a quota is full,
    /// [`ServeError::ShuttingDown`] after [`drain`](Self::drain) began.
    pub fn submit(&self, spec: JobSpec, class: JobClass) -> Result<JobHandle<R>, ServeError> {
        self.admit(spec, class, None)
    }

    /// The single admission path: `submit` with `replay_id: None`,
    /// journal replay with the crashed run's id (which bypasses quota
    /// checks — the job was admitted once already — and skips
    /// re-journaling, its record being on disk by definition).
    fn admit(
        &self,
        spec: JobSpec,
        class: JobClass,
        replay_id: Option<JobId>,
    ) -> Result<JobHandle<R>, ServeError> {
        let dims = spec.dims();
        if dims.0 == 0 || dims.1 == 0 {
            return Err(ServeError::Invalid(CaluError::EmptyMatrix));
        }
        if spec.kernels == KernelSet::Cholesky && dims.0 != dims.1 {
            return Err(ServeError::Invalid(CaluError::InvalidConfig(format!(
                "tiled Cholesky factors a square SPD matrix, got {}×{}",
                dims.0, dims.1
            ))));
        }
        let mut adm = self.shared.admission.lock();
        if adm.draining {
            return Err(ServeError::ShuttingDown);
        }
        let pool = self.shared.current_pool();
        let lane = class.lane();
        if replay_id.is_none() {
            if adm.pending_total >= self.cfg.max_pending {
                return Err(ServeError::Busy {
                    class,
                    pending: adm.pending_total,
                    quota: self.cfg.max_pending,
                    retry_after_hint: retry_hint(adm.pending_total, pool.threads()),
                });
            }
            if adm.pending[lane] >= self.cfg.class_quota[lane] {
                return Err(ServeError::Busy {
                    class,
                    pending: adm.pending[lane],
                    quota: self.cfg.class_quota[lane],
                    retry_after_hint: retry_hint(adm.pending[lane], pool.threads()),
                });
            }
        }
        let id = match replay_id {
            Some(id) => id,
            None => {
                let id = adm.next_id;
                adm.next_id += 1;
                id
            }
        };
        // the accept record must be durable before the job can run:
        // write-ahead, under the admission lock, before the pool sees
        // it. Only generator specs are journaled — dense data is not
        // replayable from a line record.
        if replay_id.is_none() {
            if let Some(j) = &self.shared.journal {
                if let Some(rec) = JournalRecord::from_spec(id, class, &spec) {
                    if let Err(e) = j.append_job(&rec) {
                        return Err(ServeError::Journal(e));
                    }
                }
            }
        }
        adm.pending_total += 1;
        adm.pending[lane] += 1;
        let info = JobInfo {
            id,
            class,
            dims,
            kernels: spec.kernels,
        };
        let cell = Arc::new(JobCell {
            state: Mutex::new(CellState::Queued),
            cv: Condvar::new(),
        });
        let sink = ServeSink {
            info,
            cell: Arc::clone(&cell),
            shared: Arc::clone(&self.shared),
        };
        // submitted while holding the admission lock: neither a drain
        // nor a reconfigure can slip between the checks above and the
        // pool seeing the job (both take this lock), so every admitted
        // job lands on a live pool and is finished — never stranded.
        // Holding the lock across `pool.submit` is safe because a pool
        // rejection hands the sink back *uncalled*; a synchronous
        // `finished` callback here would re-enter this same admission
        // lock via `job_ended` and self-deadlock.
        if let Err(sink) = pool.submit(id, class, spec.kernels, spec.source, Box::new(sink)) {
            // unreachable while the invariant above holds (pool
            // draining implies we would have seen `adm.draining`), but
            // handled without relying on it: roll back the admission
            // and refuse
            adm.pending_total -= 1;
            adm.pending[lane] -= 1;
            if let Some(j) = &self.shared.journal {
                let _ = j.append_end(id);
            }
            drop(adm);
            drop(sink);
            return Err(ServeError::ShuttingDown);
        }
        drop(adm);
        // register with the watchdog when there is anything to enforce.
        // The job may already have finished — then the watchdog drops
        // the entry at its next tick (the cell is terminal).
        if spec.deadline.is_some() || self.cfg.stall_timeout.is_some() {
            self.shared.watch.lock().push(WatchEntry {
                info,
                cell: Arc::clone(&cell),
                deadline: spec.deadline.map(|d| (Instant::now() + d, d)),
                last: None,
            });
        }
        Ok(JobHandle {
            id,
            class,
            dims,
            kernels: info.kernels,
            cell,
        })
    }

    /// Cancel a still-queued job. `true` means the job was removed and
    /// its handle resolves to [`ServeError::Cancelled`]; `false` means
    /// a worker already claimed it (or it already finished) and the
    /// race resolves to normal completion.
    pub fn cancel(&self, handle: &JobHandle<R>) -> bool {
        // a queued job lives on exactly one pool (the current one,
        // post-handover), but checking the retiring set too makes
        // cancel correct even mid-reconfigure
        let cancelled = self
            .shared
            .all_pools()
            .iter()
            .find_map(|p| p.cancel(handle.id));
        match cancelled {
            Some(_uncalled_sink) => {
                self.shared.watch.lock().retain(|e| e.info.id != handle.id);
                *handle.cell.state.lock() = CellState::Cancelled;
                handle.cell.cv.notify_all();
                let info = JobInfo {
                    id: handle.id,
                    class: handle.class,
                    dims: handle.dims,
                    kernels: handle.kernels,
                };
                self.shared.job_ended(&info, JobStatus::Cancelled);
                true
            }
            None => false,
        }
    }

    /// Take the completion-order event stream. May be taken once; the
    /// stream yields one terminal event per job and ends when the
    /// service drains.
    ///
    /// # Panics
    /// If called a second time.
    pub fn events(&self) -> Events {
        Events {
            rx: self
                .shared
                .rx
                .lock()
                .take()
                .expect("the event stream may be taken only once"),
        }
    }

    /// Swap the shared solver knobs under load: spawn a successor
    /// [`ServicePool`] over `cfg` (validated here, like construction),
    /// carry every queued job over to it with its [`JobId`], class,
    /// deadline and spec intact, and retire the old pool — in-flight
    /// jobs finish where they started, on a background drainer. Zero
    /// jobs are dropped; the event stream runs continuously across the
    /// handover and announces it with [`ServiceEvent::Reconfigured`].
    ///
    /// Returns the new pool generation (the initial pool is 0). Errors
    /// if `cfg` is invalid or the service is draining; either way the
    /// old pool keeps serving untouched.
    pub fn reconfigure(&self, cfg: &CaluConfig) -> Result<u64, CaluError> {
        // spawn first, outside every lock: it validates and is slow
        let successor = Arc::new(ServicePool::spawn(
            cfg,
            self.cfg.verify,
            self.cfg.starvation_limit,
        )?);
        let adm = self.shared.admission.lock();
        if adm.draining {
            successor.drain();
            return Err(CaluError::InvalidConfig(
                "cannot reconfigure a draining service".into(),
            ));
        }
        let old = self.shared.current_pool();
        // atomically stop the old pool's admission and pop its queue;
        // holding the admission lock means no submit can race the swap
        let mut refused: Vec<Box<dyn JobSink>> = Vec::new();
        for job in old.extract_queued() {
            if let Err(sink) =
                successor.submit(job.id, job.class, job.kernels, job.source, job.sink)
            {
                // a fresh pool refuses nothing; kept non-fatal anyway —
                // failed after the locks drop, never silently dropped
                refused.push(sink);
            }
        }
        let generation = {
            let mut pools = self.shared.pools.lock();
            pools.retiring.push(Arc::clone(&old));
            pools.current = successor;
            pools.generation += 1;
            pools.generation
        };
        drop(adm);
        for sink in refused {
            sink.finished(Err(CaluError::InvalidConfig(
                "successor pool refused a carried-over job".into(),
            )));
        }
        // the old pool finishes its in-flight tail off-thread, then
        // leaves the retiring set; `drain` joins this handle
        let drainer = {
            let shared = Arc::clone(&self.shared);
            std::thread::Builder::new()
                .name("calu-serve-retire".into())
                .spawn(move || {
                    old.drain();
                    shared
                        .pools
                        .lock()
                        .retiring
                        .retain(|p| !Arc::ptr_eq(p, &old));
                })
                .expect("spawn retire thread")
        };
        self.drainers.lock().push(drainer);
        if let Some(tx) = &*self.shared.tx.lock() {
            let _ = tx.send(ServiceEvent::Reconfigured { generation });
        }
        Ok(generation)
    }

    /// Pool generation: 0 for the initial pool, +1 per successful
    /// [`reconfigure`](Self::reconfigure).
    pub fn generation(&self) -> u64 {
        self.shared.pools.lock().generation
    }

    /// Stop admitting, finish every queued and in-flight job (on the
    /// current pool and any pool still retiring from a reconfigure),
    /// join the workers and close the event stream. Idempotent: the
    /// first call does the work, every call returns the same
    /// [`DrainSummary`]. Also runs on drop. On return, zero jobs are
    /// pending. The watchdog stays live until the pools are fully
    /// drained, so deadlines keep biting while the backlog runs down.
    pub fn drain(&self) -> DrainSummary {
        let mut drained = self.drained.lock();
        if let Some(summary) = *drained {
            return summary;
        }
        {
            let mut adm = self.shared.admission.lock();
            adm.draining = true;
        }
        self.shared.current_pool().drain();
        // retiring pools each have a background drainer; join them, and
        // belt-and-braces drain any pool still in the retiring set (a
        // reconfigure that raced this drain may not have parked its
        // handle yet — pool drains are idempotent)
        loop {
            let handles: Vec<_> = self.drainers.lock().drain(..).collect();
            let stragglers = self.shared.all_pools();
            if handles.is_empty() && stragglers.len() == 1 {
                break;
            }
            for p in stragglers {
                p.drain();
            }
            for h in handles {
                let _ = h.join();
            }
        }
        self.shared.shutdown.store(true, Ordering::Release);
        if let Some(h) = self.watchdog.lock().take() {
            let _ = h.join();
        }
        // everything is terminal: the journal compacts to empty — a
        // restart replays nothing
        if let Some(j) = &self.shared.journal {
            let _ = j.compact(&[]);
        }
        // every job is terminal; dropping the only sender ends `events`
        self.shared.tx.lock().take();
        let summary = DrainSummary {
            completed: self.shared.completed.load(Ordering::Relaxed),
            cancelled: self.shared.cancelled.load(Ordering::Relaxed),
        };
        *drained = Some(summary);
        summary
    }

    /// Whether [`drain`](Self::drain) has begun.
    pub fn is_draining(&self) -> bool {
        self.shared.admission.lock().draining
    }

    /// Jobs admitted but not yet terminal (queued + running).
    pub fn pending(&self) -> usize {
        self.shared.admission.lock().pending_total
    }

    /// [`pending`](Self::pending), one class.
    pub fn pending_in(&self, class: JobClass) -> usize {
        self.shared.admission.lock().pending[class.lane()]
    }

    /// Jobs waiting in the current pool's lanes (admitted, not yet
    /// claimed).
    pub fn queued(&self) -> usize {
        self.shared.current_pool().queued()
    }

    /// [`queued`](Self::queued), one class.
    pub fn queued_in(&self, class: JobClass) -> usize {
        self.shared.current_pool().queued_in(class)
    }

    /// Current pool width (a [`reconfigure`](Self::reconfigure) may
    /// change it).
    pub fn threads(&self) -> usize {
        self.shared.current_pool().threads()
    }

    /// The scheduling split the *current* pool generation runs under
    /// (dratio, batch cutoffs, steal direction). Reconfigure-safe by
    /// construction: a generation's split is frozen at spawn, so this
    /// always describes the pool that is admitting jobs right now — an
    /// adaptive reconfigure shows up here as soon as the swap lands.
    pub fn current_split(&self) -> calu_core::PoolSplit {
        self.shared.current_pool().split()
    }

    /// Whether a job of `dims` would be co-scheduled (claimed whole by
    /// one worker) rather than run on the co-operative hybrid schedule
    /// — the exact predicate the current pool's workers apply.
    pub fn co_schedules(&self, dims: (usize, usize)) -> bool {
        self.shared.current_pool().co_schedules(dims)
    }

    /// One-off worker spawn cost of the current pool, paid when it was
    /// built (at construction, or at the last reconfigure).
    pub fn spawn_secs(&self) -> f64 {
        self.shared.current_pool().spawn_secs()
    }

    /// Workers lost to injected faults (0 without fault injection),
    /// summed over the current pool and any pool still retiring from a
    /// reconfigure. Increases are also announced on
    /// [`events`](Self::events) as [`ServiceEvent::Degraded`].
    pub fn lost_workers(&self) -> usize {
        self.shared
            .all_pools()
            .iter()
            .map(|p| p.lost_workers())
            .sum()
    }

    /// Static tasks rescued into dynamic queues after worker loss or
    /// slowdown, summed over the live pools.
    pub fn rescued_tasks(&self) -> u64 {
        self.shared
            .all_pools()
            .iter()
            .map(|p| p.rescued_tasks())
            .sum()
    }

    /// The admission configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.cfg
    }
}

impl<R> Drop for FactorService<R> {
    fn drop(&mut self) {
        if self.drained.lock().is_some() {
            return;
        }
        {
            let mut adm = self.shared.admission.lock();
            adm.draining = true;
        }
        self.shared.current_pool().drain();
        for h in self.drainers.lock().drain(..) {
            let _ = h.join();
        }
        for p in self.shared.all_pools() {
            p.drain();
        }
        self.shared.shutdown.store(true, Ordering::Release);
        if let Some(h) = self.watchdog.lock().take() {
            let _ = h.join();
        }
        if let Some(j) = &self.shared.journal {
            let _ = j.compact(&[]);
        }
        self.shared.tx.lock().take();
    }
}

/// The [`ServeError::Busy`] retry hint: roughly one pool pass per
/// backlogged job ahead of the caller — 1 ms per `pending / threads`
/// (at least 1 ms), capped at 50 ms so callers never sleep absurdly
/// long on a deep backlog.
pub(crate) fn retry_hint(pending: usize, threads: usize) -> Duration {
    let per_pass = pending / threads.max(1);
    Duration::from_millis(per_pass.clamp(1, 50) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> CaluConfig {
        CaluConfig::new(16).with_threads(2).with_dratio(0.5)
    }

    fn svc() -> ServiceConfig {
        ServiceConfig {
            verify: false,
            ..ServiceConfig::default()
        }
    }

    #[test]
    fn submit_wait_roundtrip() {
        let service = FactorService::new(&cfg(), svc()).unwrap();
        let h = service
            .submit(JobSpec::uniform(64, 64, 1), JobClass::Interactive)
            .unwrap();
        let out = h.wait().unwrap();
        assert_eq!(out.dims, (64, 64));
        assert!(out.factorization.is_nonsingular());
        service.drain();
        assert_eq!(service.pending(), 0);
    }

    #[test]
    fn total_quota_rejects_with_busy() {
        let service = FactorService::new(
            &cfg(),
            ServiceConfig {
                max_pending: 1,
                ..svc()
            },
        )
        .unwrap();
        // two submits racing one slot: at least one Busy unless the
        // first finished first — force determinism with a big first job
        let h = service
            .submit(JobSpec::uniform(512, 512, 1), JobClass::Batch)
            .unwrap();
        let res = service.submit(JobSpec::uniform(8, 8, 2), JobClass::Batch);
        assert!(matches!(res, Err(ServeError::Busy { .. })));
        h.wait().unwrap();
        service.drain();
    }

    #[test]
    fn class_quota_is_independent_of_total() {
        let service = FactorService::new(
            &cfg(),
            ServiceConfig {
                max_pending: 100,
                class_quota: [1, 100, 100],
                ..svc()
            },
        )
        .unwrap();
        let h = service
            .submit(JobSpec::uniform(512, 512, 1), JobClass::Interactive)
            .unwrap();
        let res = service.submit(JobSpec::uniform(8, 8, 2), JobClass::Interactive);
        assert!(matches!(res, Err(ServeError::Busy { quota: 1, .. })));
        // other classes still admit
        let ok = service.submit(JobSpec::uniform(8, 8, 3), JobClass::Batch);
        assert!(ok.is_ok());
        h.wait().unwrap();
        ok.unwrap().wait().unwrap();
        service.drain();
    }

    #[test]
    fn invalid_spec_never_reaches_the_pool() {
        let service = FactorService::new(&cfg(), svc()).unwrap();
        let res = service.submit(JobSpec::uniform(0, 8, 1), JobClass::Batch);
        assert!(matches!(res, Err(ServeError::Invalid(_))));
        assert_eq!(service.pending(), 0);
        assert_eq!(service.queued(), 0);
        service.drain();
    }

    #[test]
    fn submit_after_drain_is_rejected() {
        let service = FactorService::new(&cfg(), svc()).unwrap();
        service.drain();
        let res = service.submit(JobSpec::uniform(8, 8, 1), JobClass::Interactive);
        assert!(matches!(res, Err(ServeError::ShuttingDown)));
        service.drain(); // idempotent
    }

    #[test]
    fn events_stream_yields_one_terminal_event_per_job_and_ends() {
        let service = FactorService::new(&cfg(), svc()).unwrap();
        let events = service.events();
        let n = 5;
        for seed in 0..n {
            service
                .submit(
                    JobSpec::uniform(48, 48, seed),
                    JobClass::ALL[seed as usize % 3],
                )
                .unwrap();
        }
        service.drain();
        // ends: sender dropped. No degradation without fault injection
        let seen: Vec<JobEvent> = events
            .map(|e| match e {
                ServiceEvent::Job(j) => j,
                other => panic!("expected only job events, got {other:?}"),
            })
            .collect();
        assert_eq!(seen.len(), n as usize);
        assert!(seen.iter().all(|e| e.status == JobStatus::Done));
    }

    #[test]
    fn busy_rejections_carry_a_retry_hint() {
        let service = FactorService::new(
            &cfg(),
            ServiceConfig {
                max_pending: 1,
                ..svc()
            },
        )
        .unwrap();
        let h = service
            .submit(JobSpec::uniform(512, 512, 1), JobClass::Batch)
            .unwrap();
        match service.submit(JobSpec::uniform(8, 8, 2), JobClass::Batch) {
            Err(ServeError::Busy {
                retry_after_hint, ..
            }) => {
                assert!(retry_after_hint >= Duration::from_millis(1));
                assert!(retry_after_hint <= Duration::from_millis(50));
            }
            other => panic!("expected Busy, got {other:?}"),
        }
        h.wait().unwrap();
        service.drain();
        // the hint scales with backlog depth relative to the pool
        assert_eq!(retry_hint(1, 2), Duration::from_millis(1));
        assert_eq!(retry_hint(64, 2), Duration::from_millis(32));
        assert_eq!(retry_hint(10_000, 2), Duration::from_millis(50));
    }

    #[test]
    fn wait_timeout_returns_the_handle_on_expiry_and_the_result_later() {
        let service = FactorService::new(&cfg(), svc()).unwrap();
        let h = service
            .submit(JobSpec::uniform(384, 384, 1), JobClass::Batch)
            .unwrap();
        // a 384² job does not finish in 1 ms: the handle comes back
        let h = match h.wait_timeout(Duration::from_millis(1)) {
            Err(h) => h,
            Ok(_) => panic!("a 384² factorization finished within 1 ms?"),
        };
        // and a generous re-wait resolves it normally
        match h.wait_timeout(Duration::from_secs(60)) {
            Ok(Ok(out)) => assert_eq!(out.dims, (384, 384)),
            other => panic!("expected the result, got {other:?}"),
        }
        service.drain();
    }

    #[test]
    fn a_queued_job_past_its_deadline_fails_typed() {
        // one worker, a big job in front: the victim sits queued past
        // its tiny deadline and the watchdog cancels it
        let solver = CaluConfig::new(16).with_threads(1).with_dratio(0.5);
        let service = FactorService::new(&solver, svc()).unwrap();
        let blocker = service
            .submit(JobSpec::uniform(512, 512, 1), JobClass::Batch)
            .unwrap();
        let victim = service
            .submit(
                JobSpec::uniform(256, 256, 2).with_deadline(Duration::from_millis(1)),
                JobClass::Batch,
            )
            .unwrap();
        match victim.wait() {
            Err(ServeError::DeadlineExceeded { deadline }) => {
                assert_eq!(deadline, Duration::from_millis(1));
            }
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        blocker.wait().unwrap();
        service.drain();
        assert_eq!(service.pending(), 0, "the condemned job was accounted");
    }

    #[test]
    fn a_running_job_past_its_deadline_fails_typed_and_the_pool_survives() {
        // cutoff 0 routes everything co-operative, so the watchdog can
        // condemn the in-flight run itself
        let solver = CaluConfig::new(16)
            .with_threads(2)
            .with_dratio(0.5)
            .with_batch_small_cutoff(0);
        let service = FactorService::new(&solver, svc()).unwrap();
        let doomed = service
            .submit(
                JobSpec::uniform(768, 768, 3).with_deadline(Duration::from_millis(10)),
                JobClass::Batch,
            )
            .unwrap();
        assert!(matches!(
            doomed.wait(),
            Err(ServeError::DeadlineExceeded { .. })
        ));
        // the service keeps serving after the condemnation
        let ok = service
            .submit(JobSpec::uniform(64, 64, 4), JobClass::Batch)
            .unwrap();
        ok.wait().unwrap();
        service.drain();
        assert_eq!(service.pending(), 0);
    }

    #[test]
    fn mixed_lu_and_cholesky_jobs_resolve_on_one_service() {
        let service = FactorService::new(
            &cfg(),
            ServiceConfig {
                verify: true,
                ..svc()
            },
        )
        .unwrap();
        let lu = service
            .submit(JobSpec::uniform(64, 64, 1), JobClass::Batch)
            .unwrap();
        let ch = service
            .submit(JobSpec::spd_uniform(64, 2), JobClass::Batch)
            .unwrap();
        assert_eq!(lu.kernels(), KernelSet::CaluLu);
        assert_eq!(ch.kernels(), KernelSet::Cholesky);
        let lu_out = lu.wait().unwrap();
        let ch_out = ch.wait().unwrap();
        assert_eq!(lu_out.kernels, KernelSet::CaluLu);
        assert_eq!(ch_out.kernels, KernelSet::Cholesky);
        assert!(ch_out.factorization.is_nonsingular());
        assert!(ch_out.residual.unwrap() < 1e-13);
        assert!(ch_out.growth_factor.is_none());
        service.drain();
    }

    #[test]
    fn rectangular_cholesky_spec_is_rejected_at_submit() {
        let service = FactorService::new(&cfg(), svc()).unwrap();
        let res = service.submit(
            JobSpec::uniform(64, 48, 1).with_kernels(KernelSet::Cholesky),
            JobClass::Batch,
        );
        assert!(matches!(res, Err(ServeError::Invalid(_))));
        assert_eq!(service.pending(), 0);
        service.drain();
    }

    #[test]
    fn try_status_tracks_the_lifecycle() {
        let service = FactorService::new(&cfg(), svc()).unwrap();
        let h = service
            .submit(JobSpec::uniform(64, 64, 1), JobClass::Batch)
            .unwrap();
        // any pre-terminal or terminal status is legal here; wait, then
        // the status must be terminal
        h.wait().unwrap();
        service.drain();
    }
}
