//! The TCP front door: a hermetic (`std::net`-only) line protocol over
//! a [`FactorService`].
//!
//! [`ServeListener`] binds a `TcpListener` and serves a hand-rolled,
//! line-delimited request/response protocol — no serde, no async
//! runtime, no crates.io. One request per line, one reply line per
//! request, ASCII, space-separated:
//!
//! ```text
//! request                                          reply
//! -------------------------------------------      -------------------------------
//! submit <class> uniform <m> <n> <seed> [deadline_ms <ms>]
//!                                                  ok <id>
//! submit <class> spd <n> <seed> [deadline_ms <ms>] ok <id>
//! status <id>                                      status <id> <state>
//! cancel <id>                                      ok cancelled <id> | ok too-late <id>
//! stats                                            stats pending=<n> queued=<n> ...
//! ping                                             ok pong
//! drain                                            ok drained completed=<n> cancelled=<n>
//! ```
//!
//! with `<class>` ∈ `interactive|batch|background` and `<state>` ∈
//! `queued|running|done|failed|cancelled`. Error replies are typed
//! lines, never dropped connections:
//!
//! ```text
//! err malformed <detail>     the request line did not parse (the
//!                            connection stays open and keeps serving)
//! err invalid <detail>       parsed, but the spec failed validation
//! err unknown-job <id>       status/cancel for an id this listener
//!                            does not track
//! err shutting-down          the service is draining
//! busy retry_after_ms=<n> pending=<n> quota=<n>
//!                            admission refused; retry after the hint
//! ```
//!
//! Robustness model:
//! * **timeouts** — every accepted connection gets
//!   [`NetConfig::read_timeout`] / [`NetConfig::write_timeout`]; a
//!   silent peer cannot pin a handler thread forever;
//! * **bounded handling with load shedding** — at most
//!   [`NetConfig::max_connections`] handler threads; excess arrivals
//!   beyond the small accept backlog get a one-line `busy` reply
//!   (carrying the service's usual retry hint) and are closed, instead
//!   of queueing unboundedly;
//! * **malformed input** — unparseable requests, unknown commands and
//!   over-long lines ([`NetConfig::max_line_bytes`]) are answered with
//!   `err malformed ...` and the connection keeps serving; nothing a
//!   peer sends can panic the listener;
//! * **drain over the wire** — `drain` runs
//!   [`FactorService::drain`], replies
//!   with the [`DrainSummary`](crate::DrainSummary), and shuts the
//!   listener down.

use std::collections::{HashMap, VecDeque};
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar};
use std::thread::JoinHandle;
use std::time::Duration;

use calu_core::pool::PoolOutcome;
use calu_core::sync::Mutex;

use crate::{retry_hint, FactorService, JobClass, JobHandle, JobSpec, JobStatus, ServeError};

/// Connection-handling knobs for one [`ServeListener`].
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Handler threads — connections served concurrently.
    pub max_connections: usize,
    /// Accepted connections allowed to wait for a free handler before
    /// new arrivals are shed with a `busy` reply.
    pub accept_backlog: usize,
    /// Per-connection read timeout; a peer idle longer is disconnected.
    pub read_timeout: Duration,
    /// Per-connection write timeout.
    pub write_timeout: Duration,
    /// Longest request line honored; anything longer gets
    /// `err malformed` and is discarded (the connection survives).
    pub max_line_bytes: usize,
    /// Job handles the listener keeps for `status`/`cancel`; when full,
    /// terminal entries are evicted first.
    pub max_tracked_jobs: usize,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            max_connections: 8,
            accept_backlog: 8,
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            max_line_bytes: 1024,
            max_tracked_jobs: 4096,
        }
    }
}

/// Listener-lifetime counters (see [`ServeListener::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Connections accepted (shed ones included).
    pub accepted: u64,
    /// Connections shed with a `busy` reply at the accept gate.
    pub shed: u64,
    /// Requests answered with `err malformed ...`.
    pub malformed: u64,
    /// Request lines processed.
    pub requests: u64,
}

struct NetShared<R> {
    service: Arc<FactorService<R>>,
    cfg: NetConfig,
    shutdown: AtomicBool,
    /// Accepted connections waiting for a handler.
    backlog: Mutex<VecDeque<TcpStream>>,
    backlog_cv: Condvar,
    /// id → handle, for `status`/`cancel` over the wire.
    jobs: Mutex<HashMap<u64, JobHandle<R>>>,
    accepted: AtomicU64,
    shed: AtomicU64,
    malformed: AtomicU64,
    requests: AtomicU64,
}

/// The TCP front door over one shared [`FactorService`]; see the
/// [module docs](self) for the protocol.
pub struct ServeListener<R = PoolOutcome> {
    shared: Arc<NetShared<R>>,
    local_addr: SocketAddr,
    threads: Mutex<Vec<JoinHandle<()>>>,
}

impl<R: Send + 'static> ServeListener<R> {
    /// Bind `addr` and start serving `service` (shared: the owner may
    /// keep submitting in-process, reconfigure it, or watch its
    /// events). Spawns `cfg.max_connections` handler threads plus one
    /// acceptor.
    pub fn bind(
        service: Arc<FactorService<R>>,
        addr: impl ToSocketAddrs,
        cfg: NetConfig,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        // nonblocking accept so shutdown is prompt without self-connect
        // tricks; the acceptor sleeps between empty polls
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let handlers = cfg.max_connections.max(1);
        let shared = Arc::new(NetShared {
            service,
            cfg,
            shutdown: AtomicBool::new(false),
            backlog: Mutex::new(VecDeque::new()),
            backlog_cv: Condvar::new(),
            jobs: Mutex::new(HashMap::new()),
            accepted: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            malformed: AtomicU64::new(0),
            requests: AtomicU64::new(0),
        });
        let mut threads = Vec::with_capacity(handlers + 1);
        for i in 0..handlers {
            let shared = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("calu-net-{i}"))
                    .spawn(move || handler_loop(&shared))
                    .expect("spawn net handler thread"),
            );
        }
        {
            let shared = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name("calu-net-accept".into())
                    .spawn(move || acceptor_loop(listener, &shared))
                    .expect("spawn net acceptor thread"),
            );
        }
        Ok(ServeListener {
            shared,
            local_addr,
            threads: Mutex::new(threads),
        })
    }

    /// The bound address (useful after binding port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The service behind the front door.
    pub fn service(&self) -> &Arc<FactorService<R>> {
        &self.shared.service
    }

    /// Whether the listener has begun shutting down (a wire `drain`
    /// sets this too).
    pub fn is_shut_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::Acquire)
    }

    /// Lifetime counters.
    pub fn stats(&self) -> NetStats {
        NetStats {
            accepted: self.shared.accepted.load(Ordering::Relaxed),
            shed: self.shared.shed.load(Ordering::Relaxed),
            malformed: self.shared.malformed.load(Ordering::Relaxed),
            requests: self.shared.requests.load(Ordering::Relaxed),
        }
    }

    /// Stop accepting, finish in-flight requests, and join every
    /// listener thread. Idempotent; also runs on drop. Does *not* drain
    /// the service — that stays with its owner (or a wire `drain`).
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.backlog_cv.notify_all();
        let mut threads = self.threads.lock();
        for h in threads.drain(..) {
            let _ = h.join();
        }
        // anything still parked in the backlog is closed unreplied-to;
        // peers see EOF, the standard "try again" signal
        self.shared.backlog.lock().clear();
    }
}

impl<R> Drop for ServeListener<R> {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.backlog_cv.notify_all();
        let mut threads = self.threads.lock();
        for h in threads.drain(..) {
            let _ = h.join();
        }
    }
}

/// How long the acceptor sleeps between empty nonblocking polls, and
/// the handlers' condvar wait slice — both short enough that shutdown
/// is prompt.
const POLL_TICK: Duration = Duration::from_millis(2);

fn acceptor_loop<R: Send + 'static>(listener: TcpListener, shared: &NetShared<R>) {
    while !shared.shutdown.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                shared.accepted.fetch_add(1, Ordering::Relaxed);
                let _ = stream.set_read_timeout(Some(shared.cfg.read_timeout));
                let _ = stream.set_write_timeout(Some(shared.cfg.write_timeout));
                let _ = stream.set_nodelay(true);
                let mut backlog = shared.backlog.lock();
                if backlog.len() >= shared.cfg.accept_backlog {
                    drop(backlog);
                    shed(stream, shared);
                } else {
                    backlog.push_back(stream);
                    drop(backlog);
                    shared.backlog_cv.notify_one();
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(POLL_TICK),
            // transient accept errors (per-connection resets): keep
            // listening rather than tearing the front door down
            Err(_) => std::thread::sleep(POLL_TICK),
        }
    }
    shared.backlog_cv.notify_all();
}

/// Load shedding: one `busy` line with the service's usual retry hint,
/// then close. The peer never hangs on a silent socket.
fn shed<R: Send + 'static>(mut stream: TcpStream, shared: &NetShared<R>) {
    shared.shed.fetch_add(1, Ordering::Relaxed);
    let hint = retry_hint(shared.service.pending(), shared.service.threads());
    let _ = writeln!(stream, "busy retry_after_ms={}", hint.as_millis());
    let _ = stream.shutdown(Shutdown::Both);
}

fn handler_loop<R: Send + 'static>(shared: &NetShared<R>) {
    loop {
        let stream = {
            let mut backlog = shared.backlog.lock();
            loop {
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                if let Some(s) = backlog.pop_front() {
                    break s;
                }
                backlog = shared
                    .backlog_cv
                    .wait_timeout(backlog, POLL_TICK)
                    .unwrap_or_else(|e| e.into_inner())
                    .0;
            }
        };
        // connection-level I/O errors (timeout, reset, EOF) just end
        // this connection; the handler thread moves on to the next
        let _ = serve_connection(shared, stream);
    }
}

fn serve_connection<R: Send + 'static>(shared: &NetShared<R>, stream: TcpStream) -> io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    let limit = shared.cfg.max_line_bytes as u64;
    let mut line = Vec::new();
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            return Ok(());
        }
        line.clear();
        // +1 so a line of exactly max_line_bytes plus its newline fits
        let n = reader
            .by_ref()
            .take(limit + 1)
            .read_until(b'\n', &mut line)?;
        if n == 0 {
            return Ok(()); // EOF: peer closed cleanly
        }
        if !line.ends_with(b"\n") && n as u64 == limit + 1 {
            // over-long request: typed error, discard through the next
            // newline, keep serving this connection
            shared.malformed.fetch_add(1, Ordering::Relaxed);
            shared.requests.fetch_add(1, Ordering::Relaxed);
            writeln!(
                writer,
                "err malformed line exceeds {} bytes",
                shared.cfg.max_line_bytes
            )?;
            let mut rest = Vec::new();
            loop {
                rest.clear();
                let k = reader.by_ref().take(4096).read_until(b'\n', &mut rest)?;
                if k == 0 {
                    return Ok(());
                }
                if rest.ends_with(b"\n") {
                    break;
                }
            }
            continue;
        }
        let text = String::from_utf8_lossy(&line);
        let text = text.trim();
        if text.is_empty() {
            continue;
        }
        shared.requests.fetch_add(1, Ordering::Relaxed);
        let (reply, drained) = handle_request(shared, text);
        writer.write_all(reply.as_bytes())?;
        writer.write_all(b"\n")?;
        if drained {
            // a wire drain shuts the whole front door down; the reply
            // above already carried the summary
            shared.shutdown.store(true, Ordering::Release);
            shared.backlog_cv.notify_all();
            return Ok(());
        }
    }
}

/// Parse and execute one request line; returns the reply line and
/// whether it was a `drain` (which shuts the listener down).
fn handle_request<R: Send + 'static>(shared: &NetShared<R>, line: &str) -> (String, bool) {
    let tokens: Vec<&str> = line.split_whitespace().collect();
    let malformed = |detail: String| {
        shared.malformed.fetch_add(1, Ordering::Relaxed);
        (format!("err malformed {detail}"), false)
    };
    match tokens.split_first() {
        Some((&"submit", rest)) => match parse_submit(rest) {
            Ok((spec, class)) => (submit_reply(shared, spec, class), false),
            Err(detail) => malformed(detail),
        },
        Some((&"status", [id])) => match id.parse::<u64>() {
            Ok(id) => match shared.jobs.lock().get(&id) {
                Some(h) => (
                    format!("status {id} {}", status_token(h.try_status())),
                    false,
                ),
                None => (format!("err unknown-job {id}"), false),
            },
            Err(_) => malformed(format!("bad job id {id:?}")),
        },
        Some((&"cancel", [id])) => match id.parse::<u64>() {
            Ok(id) => {
                // clone-free: cancel needs the handle, so look it up
                // and act under the map lock (cancel never blocks)
                let jobs = shared.jobs.lock();
                match jobs.get(&id) {
                    Some(h) => {
                        if shared.service.cancel(h) {
                            (format!("ok cancelled {id}"), false)
                        } else {
                            (format!("ok too-late {id}"), false)
                        }
                    }
                    None => (format!("err unknown-job {id}"), false),
                }
            }
            Err(_) => malformed(format!("bad job id {id:?}")),
        },
        Some((&"stats", [])) => {
            let service = &shared.service;
            // the split fields read off the *current* pool generation,
            // so an adaptive reconfigure is visible over the wire the
            // moment the pool swap lands
            let split = service.current_split();
            (
                format!(
                    "stats pending={} queued={} threads={} generation={} lost_workers={} \
                     accepted={} shed={} malformed={} requests={} dratio={:.4} \
                     steal_order={} small_cutoff={}",
                    service.pending(),
                    service.queued(),
                    service.threads(),
                    service.generation(),
                    service.lost_workers(),
                    shared.accepted.load(Ordering::Relaxed),
                    shared.shed.load(Ordering::Relaxed),
                    shared.malformed.load(Ordering::Relaxed),
                    shared.requests.load(Ordering::Relaxed),
                    split.dratio,
                    split.steal_order,
                    split.batch_small_cutoff,
                ),
                false,
            )
        }
        Some((&"ping", [])) => ("ok pong".into(), false),
        Some((&"drain", [])) => {
            let summary = shared.service.drain();
            (
                format!(
                    "ok drained completed={} cancelled={}",
                    summary.completed, summary.cancelled
                ),
                true,
            )
        }
        Some((&cmd, _)) => malformed(format!("unrecognized command {cmd:?}")),
        None => malformed("empty request".into()),
    }
}

fn submit_reply<R: Send + 'static>(
    shared: &NetShared<R>,
    spec: JobSpec,
    class: JobClass,
) -> String {
    match shared.service.submit(spec, class) {
        Ok(handle) => {
            let id = handle.id();
            let mut jobs = shared.jobs.lock();
            if jobs.len() >= shared.cfg.max_tracked_jobs {
                // keep the map bounded: terminal handles are only
                // status-query fodder, live ones stay trackable
                jobs.retain(|_, h| {
                    matches!(h.try_status(), JobStatus::Queued | JobStatus::Running)
                });
            }
            jobs.insert(id, handle);
            format!("ok {id}")
        }
        Err(ServeError::Busy {
            pending,
            quota,
            retry_after_hint,
            ..
        }) => format!(
            "busy retry_after_ms={} pending={pending} quota={quota}",
            retry_after_hint.as_millis()
        ),
        Err(ServeError::ShuttingDown) => "err shutting-down".into(),
        Err(ServeError::Invalid(e)) => format!("err invalid {e}"),
        Err(e) => format!("err failed {e}"),
    }
}

/// Parse the tokens after `submit`:
/// `<class> uniform <m> <n> <seed> [deadline_ms <ms>]` or
/// `<class> spd <n> <seed> [deadline_ms <ms>]`.
fn parse_submit(rest: &[&str]) -> Result<(JobSpec, JobClass), String> {
    let (&class_tok, rest) = rest
        .split_first()
        .ok_or_else(|| "submit needs a class".to_string())?;
    let class = match class_tok {
        "interactive" => JobClass::Interactive,
        "batch" => JobClass::Batch,
        "background" => JobClass::Background,
        other => return Err(format!("unknown class {other:?}")),
    };
    let (&kind, rest) = rest
        .split_first()
        .ok_or_else(|| "submit needs a generator spec".to_string())?;
    let (mut spec, rest) = match kind {
        "uniform" => {
            let [m, n, seed, rest @ ..] = rest else {
                return Err("uniform needs <m> <n> <seed>".into());
            };
            let m = parse_num::<usize>(m, "m")?;
            let n = parse_num::<usize>(n, "n")?;
            let seed = parse_num::<u64>(seed, "seed")?;
            (JobSpec::uniform(m, n, seed), rest)
        }
        "spd" => {
            let [n, seed, rest @ ..] = rest else {
                return Err("spd needs <n> <seed>".into());
            };
            let n = parse_num::<usize>(n, "n")?;
            let seed = parse_num::<u64>(seed, "seed")?;
            (JobSpec::spd_uniform(n, seed), rest)
        }
        other => return Err(format!("unknown generator {other:?}")),
    };
    match rest {
        [] => {}
        ["deadline_ms", ms] => {
            spec = spec.with_deadline(Duration::from_millis(parse_num::<u64>(ms, "deadline_ms")?));
        }
        extra => return Err(format!("unexpected trailing tokens {extra:?}")),
    }
    Ok((spec, class))
}

fn parse_num<T: std::str::FromStr>(tok: &str, what: &str) -> Result<T, String> {
    tok.parse().map_err(|_| format!("bad {what} {tok:?}"))
}

fn status_token(status: JobStatus) -> &'static str {
    match status {
        JobStatus::Queued => "queued",
        JobStatus::Running => "running",
        JobStatus::Done => "done",
        JobStatus::Failed => "failed",
        JobStatus::Cancelled => "cancelled",
    }
}
