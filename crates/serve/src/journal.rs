//! Crash-safe job journal: a line-oriented write-ahead log for
//! [`FactorService`](crate::FactorService).
//!
//! With [`ServiceConfig::journal`](crate::ServiceConfig::journal) set,
//! the service appends one record per accepted generator-spec job
//! *before* admission returns, and one completion marker when the job
//! goes terminal. A service rebuilt over the same path replays the
//! incomplete tail — same [`JobId`]s, classes, kernels
//! and seeds — so every interrupted job factors bitwise-identical to an
//! uninterrupted run (generator sources are seeded and the pool's
//! exclusive-writer discipline makes results schedule-independent).
//!
//! # Format
//!
//! Plain ASCII lines, append-only between compactions:
//!
//! ```text
//! job <id> <class> <kernels> uniform <m> <n> <seed> [deadline_ms <ms>]
//! job <id> <class> <kernels> spd <n> <seed> [deadline_ms <ms>]
//! end <id>
//! ```
//!
//! with `<class>` ∈ `interactive|batch|background` and `<kernels>` ∈
//! `lu|cholesky`. A job is *incomplete* iff its `job` line has no
//! matching `end` line. Unparseable lines — a torn final write from a
//! crash mid-append — are skipped, never fatal. Dense-data jobs are not
//! journaled at all: a matrix moved in by value is not replayable from
//! a line record, and pretending otherwise would corrupt the
//! bitwise-identity contract.
//!
//! # Durability
//!
//! Appends flush and (by default) `sync_data` before returning, so an
//! accepted job survives an immediate process kill. Compaction — at
//! open (dropping completed pairs) and at drain (truncating to empty)
//! — writes a fresh temp file and renames it over the journal, the
//! usual atomic-replace idiom.

use std::fs::{File, OpenOptions};
use std::io::{self, BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::time::Duration;

use calu_core::sync::Mutex;
use calu_core::KernelSet;
use calu_sched::JobClass;

use crate::{JobId, JobSpec};

/// Where (and how durably) a [`FactorService`](crate::FactorService)
/// journals accepted jobs.
#[derive(Debug, Clone)]
pub struct JournalConfig {
    /// Journal file; created if absent, replayed if present.
    pub path: PathBuf,
    /// `sync_data` every append (the default). Turning this off keeps
    /// the write-ahead ordering but trades crash durability of the last
    /// few records for speed.
    pub fsync: bool,
}

impl JournalConfig {
    /// Journal at `path` with fsync on.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        JournalConfig {
            path: path.into(),
            fsync: true,
        }
    }
}

/// One parsed `job` line.
pub(crate) struct JournalRecord {
    pub id: JobId,
    pub class: JobClass,
    pub kernels: KernelSet,
    pub source: RecordSource,
    pub deadline: Option<Duration>,
}

/// The replayable (seeded-generator) sources.
pub(crate) enum RecordSource {
    Uniform { m: usize, n: usize, seed: u64 },
    Spd { n: usize, seed: u64 },
}

impl JournalRecord {
    /// The record for an accepted spec, or `None` when the spec is not
    /// journal-replayable (dense data).
    pub(crate) fn from_spec(id: JobId, class: JobClass, spec: &JobSpec) -> Option<Self> {
        use calu_core::pool::PoolSource;
        let source = match &spec.source {
            PoolSource::Uniform { m, n, seed } => RecordSource::Uniform {
                m: *m,
                n: *n,
                seed: *seed,
            },
            PoolSource::SpdUniform { n, seed } => RecordSource::Spd { n: *n, seed: *seed },
            PoolSource::Dense(_) => return None,
        };
        Some(JournalRecord {
            id,
            class,
            kernels: spec.kernels,
            source,
            deadline: spec.deadline,
        })
    }

    /// Rebuild the admission arguments this record was written from.
    pub(crate) fn into_spec(self) -> (JobSpec, JobClass, JobId) {
        let mut spec = match self.source {
            RecordSource::Uniform { m, n, seed } => JobSpec::uniform(m, n, seed),
            RecordSource::Spd { n, seed } => JobSpec::spd_uniform(n, seed),
        }
        .with_kernels(self.kernels);
        if let Some(d) = self.deadline {
            spec = spec.with_deadline(d);
        }
        (spec, self.class, self.id)
    }

    fn render(&self) -> String {
        let class = class_token(self.class);
        let kernels = kernels_token(self.kernels);
        let mut line = match self.source {
            RecordSource::Uniform { m, n, seed } => {
                format!("job {} {class} {kernels} uniform {m} {n} {seed}", self.id)
            }
            RecordSource::Spd { n, seed } => {
                format!("job {} {class} {kernels} spd {n} {seed}", self.id)
            }
        };
        if let Some(d) = self.deadline {
            line.push_str(&format!(" deadline_ms {}", d.as_millis()));
        }
        line
    }

    /// Parse one `job` line (the tokens after the `job` keyword).
    fn parse(rest: &[&str]) -> Option<Self> {
        let (&id, rest) = rest.split_first()?;
        let id: JobId = id.parse().ok()?;
        let (&class, rest) = rest.split_first()?;
        let class = parse_class(class)?;
        let (&kernels, rest) = rest.split_first()?;
        let kernels = parse_kernels(kernels)?;
        let (&kind, rest) = rest.split_first()?;
        let (source, rest) = match kind {
            "uniform" => {
                let [m, n, seed, rest @ ..] = rest else {
                    return None;
                };
                (
                    RecordSource::Uniform {
                        m: m.parse().ok()?,
                        n: n.parse().ok()?,
                        seed: seed.parse().ok()?,
                    },
                    rest,
                )
            }
            "spd" => {
                let [n, seed, rest @ ..] = rest else {
                    return None;
                };
                (
                    RecordSource::Spd {
                        n: n.parse().ok()?,
                        seed: seed.parse().ok()?,
                    },
                    rest,
                )
            }
            _ => return None,
        };
        let deadline = match rest {
            [] => None,
            ["deadline_ms", ms] => Some(Duration::from_millis(ms.parse().ok()?)),
            _ => return None,
        };
        Some(JournalRecord {
            id,
            class,
            kernels,
            source,
            deadline,
        })
    }
}

fn class_token(class: JobClass) -> &'static str {
    match class {
        JobClass::Interactive => "interactive",
        JobClass::Batch => "batch",
        JobClass::Background => "background",
    }
}

fn parse_class(tok: &str) -> Option<JobClass> {
    match tok {
        "interactive" => Some(JobClass::Interactive),
        "batch" => Some(JobClass::Batch),
        "background" => Some(JobClass::Background),
        _ => None,
    }
}

fn kernels_token(kernels: KernelSet) -> &'static str {
    match kernels {
        KernelSet::CaluLu => "lu",
        KernelSet::Cholesky => "cholesky",
    }
}

fn parse_kernels(tok: &str) -> Option<KernelSet> {
    match tok {
        "lu" => Some(KernelSet::CaluLu),
        "cholesky" => Some(KernelSet::Cholesky),
        _ => None,
    }
}

/// The open journal: an append handle behind a mutex, so sinks on
/// worker threads and submits interleave whole-line.
pub(crate) struct Journal {
    file: Mutex<File>,
    path: PathBuf,
    fsync: bool,
}

impl Journal {
    /// Open (creating if absent) the journal at `cfg.path`, parse it,
    /// compact it down to its incomplete tail, and return that tail as
    /// the replay backlog, ordered by id.
    pub(crate) fn open(cfg: &JournalConfig) -> io::Result<(Journal, Vec<JournalRecord>)> {
        let mut backlog = read_incomplete(&cfg.path)?;
        backlog.sort_by_key(|r| r.id);
        let journal = Journal {
            file: Mutex::new(append_handle(&cfg.path)?),
            path: cfg.path.clone(),
            fsync: cfg.fsync,
        };
        // rewrite the file to exactly the records being replayed, so
        // completed history does not accrete across restarts
        journal.compact(&backlog)?;
        Ok((journal, backlog))
    }

    /// Append one accepted-job record, durably (write-ahead: called
    /// before the pool sees the job).
    pub(crate) fn append_job(&self, rec: &JournalRecord) -> io::Result<()> {
        self.append_line(&rec.render())
    }

    /// Append one completion marker.
    pub(crate) fn append_end(&self, id: JobId) -> io::Result<()> {
        self.append_line(&format!("end {id}"))
    }

    fn append_line(&self, line: &str) -> io::Result<()> {
        let mut file = self.file.lock();
        file.write_all(line.as_bytes())?;
        file.write_all(b"\n")?;
        file.flush()?;
        if self.fsync {
            file.sync_data()?;
        }
        Ok(())
    }

    /// Atomically replace the journal with exactly `records` (empty at
    /// drain: nothing left to replay).
    pub(crate) fn compact(&self, records: &[JournalRecord]) -> io::Result<()> {
        let mut file = self.file.lock();
        let tmp = self.path.with_extension("journal-compact");
        {
            let mut out = File::create(&tmp)?;
            for rec in records {
                out.write_all(rec.render().as_bytes())?;
                out.write_all(b"\n")?;
            }
            out.sync_data()?;
        }
        std::fs::rename(&tmp, &self.path)?;
        // the old handle still points at the unlinked inode; reopen
        *file = append_handle(&self.path)?;
        if self.fsync {
            file.sync_data()?;
        }
        Ok(())
    }
}

fn append_handle(path: &Path) -> io::Result<File> {
    OpenOptions::new().create(true).append(true).open(path)
}

/// Parse the journal at `path` (absent file = empty journal) into the
/// records with no completion marker. Unparseable lines — torn tails
/// from a crash mid-append — are skipped.
fn read_incomplete(path: &Path) -> io::Result<Vec<JournalRecord>> {
    let file = match File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    };
    let mut open: Vec<JournalRecord> = Vec::new();
    for line in BufReader::new(file).split(b'\n') {
        let line = line?;
        let line = String::from_utf8_lossy(&line);
        let tokens: Vec<&str> = line.split_whitespace().collect();
        match tokens.split_first() {
            Some((&"job", rest)) => {
                if let Some(rec) = JournalRecord::parse(rest) {
                    // a duplicate id keeps the latest record
                    open.retain(|r| r.id != rec.id);
                    open.push(rec);
                }
            }
            Some((&"end", [id])) => {
                if let Ok(id) = id.parse::<JobId>() {
                    open.retain(|r| r.id != id);
                }
            }
            _ => {} // torn or foreign line: tolerated
        }
    }
    Ok(open)
}
