//! Randomized-sweep tests for the kernels: optimized implementations vs
//! the textbook oracles in `calu_matrix::ops`, across seeded random
//! shapes (formerly proptest).

use calu_kernels::trsm::{dtrsm_left_lower_unit_unblocked, dtrsm_right_upper_unblocked, TRSM_NB};
use calu_kernels::{
    dgemm, dgemm_jki, dgetf2, dgetrf_recursive, dtrsm_left_lower_unit, dtrsm_right_upper,
    lu_nopiv_unblocked,
};
use calu_matrix::{gen, ops, DenseMatrix, RowPerm};
use calu_rand::Rng;

#[test]
fn gemm_matches_reference() {
    let mut rng = Rng::seed_from_u64(20);
    for _ in 0..48 {
        let m = rng.gen_range(1..40);
        let n = rng.gen_range(1..40);
        let k = rng.gen_range(0..40);
        let alpha = rng.gen_range(-2.0..2.0);
        let beta = rng.gen_range(-2.0..2.0);
        let seed = rng.next_u64() % 1000;
        let a = gen::uniform(m, k.max(1), seed);
        let b = gen::uniform(k.max(1), n, seed + 1);
        let c = gen::uniform(m, n, seed + 2);
        let mut got = c.clone();
        let ld = got.ld();
        dgemm(
            m,
            n,
            k,
            alpha,
            a.as_slice(),
            a.ld().max(1),
            b.as_slice(),
            b.ld().max(1),
            beta,
            got.as_mut_slice(),
            ld,
        );
        // reference: alpha*A(:, :k)*B(:k, :) + beta*C
        let want = if k == 0 {
            ops::scale(beta, &c)
        } else {
            let ak = a.submatrix(0, 0, m, k);
            let bk = b.submatrix(0, 0, k, n);
            ops::add(
                &ops::scale(alpha, &ops::matmul(&ak, &bk)),
                &ops::scale(beta, &c),
            )
        };
        assert!(got.approx_eq(&want, 1e-10));
    }
}

#[test]
fn packed_gemm_matches_seed_jki_kernel() {
    // the packed register-tiled kernel vs the seed jki kernel across
    // random shapes straddling the MR/NR register-tile and KC cache-block
    // boundaries (two different summation orders, so compare loosely)
    let mut rng = Rng::seed_from_u64(25);
    for _ in 0..24 {
        let m = rng.gen_range(1..200);
        let n = rng.gen_range(1..80);
        let k = rng.gen_range(1..300);
        let seed = rng.next_u64() % 1000;
        let a = gen::uniform(m, k, seed);
        let b = gen::uniform(k, n, seed + 1);
        let c = gen::uniform(m, n, seed + 2);
        let mut packed = c.clone();
        let mut jki = c.clone();
        let ld = c.ld();
        dgemm(
            m,
            n,
            k,
            -1.0,
            a.as_slice(),
            a.ld(),
            b.as_slice(),
            b.ld(),
            1.0,
            packed.as_mut_slice(),
            ld,
        );
        dgemm_jki(
            m,
            n,
            k,
            -1.0,
            a.as_slice(),
            a.ld(),
            b.as_slice(),
            b.ld(),
            1.0,
            jki.as_mut_slice(),
            ld,
        );
        assert!(packed.approx_eq(&jki, 1e-10 * k as f64), "({m},{n},{k})");
    }
}

#[test]
fn blocked_trsm_equals_unblocked() {
    // blocked (diag solve + GEMM) vs pure substitution on sizes around
    // multiples of TRSM_NB — the blocked path's only approximation is
    // reassociation, so the factors agree tightly
    let mut rng = Rng::seed_from_u64(26);
    for _ in 0..16 {
        let m = rng.gen_range(1..3 * TRSM_NB + 10);
        let n = rng.gen_range(1..24);
        let seed = rng.next_u64() % 1000;
        let r = gen::uniform(m, m, seed);
        let l = DenseMatrix::from_fn(m, m, |i, j| {
            if i == j {
                1.0
            } else if i > j {
                0.4 * r.get(i, j)
            } else {
                0.0
            }
        });
        let b0 = gen::uniform(m, n, seed + 1);
        let mut blocked = b0.clone();
        let mut unblocked = b0.clone();
        let ld = b0.ld();
        dtrsm_left_lower_unit(m, n, l.as_slice(), l.ld(), blocked.as_mut_slice(), ld);
        dtrsm_left_lower_unit_unblocked(m, n, l.as_slice(), l.ld(), unblocked.as_mut_slice(), ld);
        assert!(blocked.approx_eq(&unblocked, 1e-9), "left m={m} n={n}");

        let r = gen::uniform(m, m, seed + 2);
        let u = DenseMatrix::from_fn(m, m, |i, j| {
            if i == j {
                1.5 + r.get(i, j).abs()
            } else if i < j {
                r.get(i, j)
            } else {
                0.0
            }
        });
        let b0 = gen::uniform(n, m, seed + 3);
        let mut blocked = b0.clone();
        let mut unblocked = b0.clone();
        let ld = b0.ld();
        dtrsm_right_upper(n, m, u.as_slice(), u.ld(), blocked.as_mut_slice(), ld);
        dtrsm_right_upper_unblocked(n, m, u.as_slice(), u.ld(), unblocked.as_mut_slice(), ld);
        assert!(blocked.approx_eq(&unblocked, 1e-9), "right m={m} n={n}");
    }
}

#[test]
fn recursive_lu_equals_unblocked() {
    let mut rng = Rng::seed_from_u64(21);
    for _ in 0..48 {
        let m = rng.gen_range(1..60);
        let n = rng.gen_range(1..40);
        let seed = rng.next_u64() % 1000;
        let a = gen::uniform(m, n, seed);
        let mut f1 = a.clone();
        let mut f2 = a.clone();
        let ld = a.ld();
        let p1 = dgetf2(m, n, f1.as_mut_slice(), ld);
        let p2 = dgetrf_recursive(m, n, f2.as_mut_slice(), ld);
        assert_eq!(p1.piv, p2.piv);
        assert!(f1.approx_eq(&f2, 1e-9));
    }
}

#[test]
fn gepp_reconstructs_pa() {
    let mut rng = Rng::seed_from_u64(22);
    for _ in 0..48 {
        let m = rng.gen_range(1..48);
        let n = rng.gen_range(1..48);
        let seed = rng.next_u64() % 1000;
        let a = gen::uniform(m, n, seed);
        let mut f = a.clone();
        let ld = a.ld();
        let p = dgetf2(m, n, f.as_mut_slice(), ld);
        let perm = RowPerm::from_pivots(0, p.piv);
        let pa = perm.permuted(&a);
        let lu = ops::matmul(&f.lower_unit(), &f.upper());
        assert!(lu.approx_eq(&pa, 1e-9));
    }
}

#[test]
fn trsm_inverts_multiplication() {
    let mut rng = Rng::seed_from_u64(23);
    for _ in 0..48 {
        let m = rng.gen_range(1..24);
        let n = rng.gen_range(1..24);
        let seed = rng.next_u64() % 1000;
        // left solve
        let r = gen::uniform(m, m, seed);
        let l = DenseMatrix::from_fn(m, m, |i, j| {
            if i == j {
                1.0
            } else if i > j {
                0.4 * r.get(i, j)
            } else {
                0.0
            }
        });
        let x = gen::uniform(m, n, seed + 1);
        let b = ops::matmul(&l, &x);
        let mut got = b.clone();
        let ld = got.ld();
        dtrsm_left_lower_unit(m, n, l.as_slice(), l.ld(), got.as_mut_slice(), ld);
        assert!(got.approx_eq(&x, 1e-8));
        // right solve
        let r = gen::uniform(n, n, seed + 2);
        let u = DenseMatrix::from_fn(n, n, |i, j| {
            if i == j {
                1.5 + r.get(i, j).abs()
            } else if i < j {
                r.get(i, j)
            } else {
                0.0
            }
        });
        let x = gen::uniform(m, n, seed + 3);
        let b = ops::matmul(&x, &u);
        let mut got = b.clone();
        let ld = got.ld();
        dtrsm_right_upper(m, n, u.as_slice(), u.ld(), got.as_mut_slice(), ld);
        assert!(got.approx_eq(&x, 1e-8));
    }
}

#[test]
fn lu_nopiv_on_dominant_matrices() {
    let mut rng = Rng::seed_from_u64(24);
    for _ in 0..48 {
        let n = rng.gen_range(1..32);
        let seed = rng.next_u64() % 1000;
        let a = gen::diag_dominant(n, seed);
        let mut f = a.clone();
        let ld = a.ld();
        let s = lu_nopiv_unblocked(n, n, f.as_mut_slice(), ld);
        assert!(s.is_none());
        let lu = ops::matmul(&f.lower_unit(), &f.upper());
        assert!(lu.approx_eq(&a, 1e-8 * n as f64));
    }
}
