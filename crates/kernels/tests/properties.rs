//! Randomized-sweep tests for the kernels: optimized implementations vs
//! the textbook oracles in `calu_matrix::ops`, across seeded random
//! shapes (formerly proptest).

use calu_kernels::{
    dgemm, dgetf2, dgetrf_recursive, dtrsm_left_lower_unit, dtrsm_right_upper, lu_nopiv_unblocked,
};
use calu_matrix::{gen, ops, DenseMatrix, RowPerm};
use calu_rand::Rng;

#[test]
fn gemm_matches_reference() {
    let mut rng = Rng::seed_from_u64(20);
    for _ in 0..48 {
        let m = rng.gen_range(1..40);
        let n = rng.gen_range(1..40);
        let k = rng.gen_range(0..40);
        let alpha = rng.gen_range(-2.0..2.0);
        let beta = rng.gen_range(-2.0..2.0);
        let seed = rng.next_u64() % 1000;
        let a = gen::uniform(m, k.max(1), seed);
        let b = gen::uniform(k.max(1), n, seed + 1);
        let c = gen::uniform(m, n, seed + 2);
        let mut got = c.clone();
        let ld = got.ld();
        dgemm(
            m,
            n,
            k,
            alpha,
            a.as_slice(),
            a.ld().max(1),
            b.as_slice(),
            b.ld().max(1),
            beta,
            got.as_mut_slice(),
            ld,
        );
        // reference: alpha*A(:, :k)*B(:k, :) + beta*C
        let want = if k == 0 {
            ops::scale(beta, &c)
        } else {
            let ak = a.submatrix(0, 0, m, k);
            let bk = b.submatrix(0, 0, k, n);
            ops::add(
                &ops::scale(alpha, &ops::matmul(&ak, &bk)),
                &ops::scale(beta, &c),
            )
        };
        assert!(got.approx_eq(&want, 1e-10));
    }
}

#[test]
fn recursive_lu_equals_unblocked() {
    let mut rng = Rng::seed_from_u64(21);
    for _ in 0..48 {
        let m = rng.gen_range(1..60);
        let n = rng.gen_range(1..40);
        let seed = rng.next_u64() % 1000;
        let a = gen::uniform(m, n, seed);
        let mut f1 = a.clone();
        let mut f2 = a.clone();
        let ld = a.ld();
        let p1 = dgetf2(m, n, f1.as_mut_slice(), ld);
        let p2 = dgetrf_recursive(m, n, f2.as_mut_slice(), ld);
        assert_eq!(p1.piv, p2.piv);
        assert!(f1.approx_eq(&f2, 1e-9));
    }
}

#[test]
fn gepp_reconstructs_pa() {
    let mut rng = Rng::seed_from_u64(22);
    for _ in 0..48 {
        let m = rng.gen_range(1..48);
        let n = rng.gen_range(1..48);
        let seed = rng.next_u64() % 1000;
        let a = gen::uniform(m, n, seed);
        let mut f = a.clone();
        let ld = a.ld();
        let p = dgetf2(m, n, f.as_mut_slice(), ld);
        let perm = RowPerm::from_pivots(0, p.piv);
        let pa = perm.permuted(&a);
        let lu = ops::matmul(&f.lower_unit(), &f.upper());
        assert!(lu.approx_eq(&pa, 1e-9));
    }
}

#[test]
fn trsm_inverts_multiplication() {
    let mut rng = Rng::seed_from_u64(23);
    for _ in 0..48 {
        let m = rng.gen_range(1..24);
        let n = rng.gen_range(1..24);
        let seed = rng.next_u64() % 1000;
        // left solve
        let r = gen::uniform(m, m, seed);
        let l = DenseMatrix::from_fn(m, m, |i, j| {
            if i == j {
                1.0
            } else if i > j {
                0.4 * r.get(i, j)
            } else {
                0.0
            }
        });
        let x = gen::uniform(m, n, seed + 1);
        let b = ops::matmul(&l, &x);
        let mut got = b.clone();
        let ld = got.ld();
        dtrsm_left_lower_unit(m, n, l.as_slice(), l.ld(), got.as_mut_slice(), ld);
        assert!(got.approx_eq(&x, 1e-8));
        // right solve
        let r = gen::uniform(n, n, seed + 2);
        let u = DenseMatrix::from_fn(n, n, |i, j| {
            if i == j {
                1.5 + r.get(i, j).abs()
            } else if i < j {
                r.get(i, j)
            } else {
                0.0
            }
        });
        let x = gen::uniform(m, n, seed + 3);
        let b = ops::matmul(&x, &u);
        let mut got = b.clone();
        let ld = got.ld();
        dtrsm_right_upper(m, n, u.as_slice(), u.ld(), got.as_mut_slice(), ld);
        assert!(got.approx_eq(&x, 1e-8));
    }
}

#[test]
fn lu_nopiv_on_dominant_matrices() {
    let mut rng = Rng::seed_from_u64(24);
    for _ in 0..48 {
        let n = rng.gen_range(1..32);
        let seed = rng.next_u64() % 1000;
        let a = gen::diag_dominant(n, seed);
        let mut f = a.clone();
        let ld = a.ld();
        let s = lu_nopiv_unblocked(n, n, f.as_mut_slice(), ld);
        assert!(s.is_none());
        let lu = ops::matmul(&f.lower_unit(), &f.upper());
        assert!(lu.approx_eq(&a, 1e-8 * n as f64));
    }
}
