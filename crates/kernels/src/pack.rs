//! Operand packing for the blocked GEMM — the "pack" stage of the
//! GotoBLAS/BLIS algorithm.
//!
//! The driver copies each `MC×KC` block of `A` and `KC×NC` block of `B`
//! into contiguous scratch buffers once per cache block, so the
//! micro-kernel streams both operands with unit stride regardless of the
//! source leading dimensions:
//!
//! * `A` is laid out as ⌈mc/MR⌉ row panels; panel `p` stores the `MR`
//!   rows `p·MR..` column-by-column (`buf[p·MR·kc + l·MR + r]` holds
//!   `A[p·MR + r, l]`), zero-padded when `mc` is not a multiple of `MR`;
//! * `B` is laid out as ⌈nc/NR⌉ column panels; panel `q` stores the `NR`
//!   columns `q·NR..` row-by-row (`buf[q·NR·kc + l·NR + c]` holds
//!   `B[l, q·NR + c]`), zero-padded when `nc` is not a multiple of `NR`.
//!
//! Zero padding lets the micro-kernel always run a full `MR×NR` tile;
//! the store stage writes back only the real `mr×nr` corner.
//!
//! The buffers live in a [`GemmScratch`] arena owned by the caller, so a
//! hot loop (the threaded executor's trailing-matrix updates) packs into
//! the same allocation for every task instead of hitting the allocator.

use crate::gemm::{KC, MC, MR, NC, NR};

/// Reusable packing arena for the blocked GEMM.
///
/// One scratch serves any sequence of GEMM/TRSM/GETRF calls from one
/// thread; the kernels grow it on demand (never shrink), so sizing it up
/// front with [`GemmScratch::sized_for`] makes every later call
/// allocation-free.
#[derive(Debug, Default)]
pub struct GemmScratch {
    pub(crate) a_pack: Vec<f64>,
    pub(crate) b_pack: Vec<f64>,
}

impl GemmScratch {
    /// An empty arena; grows lazily on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// An arena pre-sized so that any GEMM with `m ≤ max_m`, `n ≤ max_n`,
    /// `k ≤ max_k` (and any kernel built on such GEMMs, e.g. tile-sized
    /// TRSM/GETRF) never reallocates. The threaded executor sizes one per
    /// worker from the configured tile dimension.
    pub fn sized_for(max_m: usize, max_n: usize, max_k: usize) -> Self {
        let mut s = Self::new();
        s.reserve(max_m, max_n, max_k);
        s
    }

    /// Grow the arena to cover a GEMM of the given dimensions.
    pub fn reserve(&mut self, m: usize, n: usize, k: usize) {
        let kc = k.min(KC);
        let a_len = round_up(m.min(MC), MR) * kc;
        let b_len = kc * round_up(n.min(NC), NR);
        if self.a_pack.len() < a_len {
            self.a_pack.resize(a_len, 0.0);
        }
        if self.b_pack.len() < b_len {
            self.b_pack.resize(b_len, 0.0);
        }
    }
}

/// Smallest multiple of `q` that is `>= x` (0 stays 0).
#[inline]
pub(crate) fn round_up(x: usize, q: usize) -> usize {
    x.div_ceil(q) * q
}

/// Run `f` with this thread's shared scratch arena — the backing store
/// for the convenience kernel entry points that don't take an explicit
/// [`GemmScratch`]. Falls back to a fresh arena on re-entrant use so a
/// nested call can never observe a torn borrow.
pub(crate) fn with_thread_scratch<R>(f: impl FnOnce(&mut GemmScratch) -> R) -> R {
    use std::cell::RefCell;
    thread_local! {
        static SCRATCH: RefCell<GemmScratch> = RefCell::new(GemmScratch::new());
    }
    SCRATCH.with(|s| match s.try_borrow_mut() {
        Ok(mut scratch) => f(&mut scratch),
        Err(_) => f(&mut GemmScratch::new()),
    })
}

/// Pack the `mc × kc` block of `A` at `a` (column-major, leading
/// dimension `lda`) into `buf` as MR-row panels (see module docs).
/// Panics if `buf` holds fewer than `round_up(mc, MR) * kc` elements.
///
/// # Safety
///
/// `a` must be valid for reads over the block's span
/// (`(kc-1)·lda + mc` elements).
pub unsafe fn pack_a(mc: usize, kc: usize, a: *const f64, lda: usize, buf: &mut [f64]) {
    // hard assert: the unchecked writes below are bounded by it
    assert!(
        buf.len() >= round_up(mc, MR) * kc,
        "pack_a buffer too small"
    );
    let mut dst = 0;
    let mut i0 = 0;
    while i0 < mc {
        let mr = MR.min(mc - i0);
        for l in 0..kc {
            let col = a.add(l * lda + i0);
            for r in 0..mr {
                *buf.get_unchecked_mut(dst + r) = *col.add(r);
            }
            for r in mr..MR {
                *buf.get_unchecked_mut(dst + r) = 0.0;
            }
            dst += MR;
        }
        i0 += MR;
    }
}

/// Pack the `kc × nc` block of `B` at `b` (column-major, leading
/// dimension `ldb`) into `buf` as NR-column panels (see module docs).
/// Panics if `buf` holds fewer than `kc * round_up(nc, NR)` elements.
///
/// # Safety
///
/// `b` must be valid for reads over the block's span
/// (`(nc-1)·ldb + kc` elements).
pub unsafe fn pack_b(kc: usize, nc: usize, b: *const f64, ldb: usize, buf: &mut [f64]) {
    // hard assert: the unchecked writes below are bounded by it
    assert!(
        buf.len() >= kc * round_up(nc, NR),
        "pack_b buffer too small"
    );
    let mut dst = 0;
    let mut j0 = 0;
    while j0 < nc {
        let nr = NR.min(nc - j0);
        for l in 0..kc {
            for c in 0..nr {
                *buf.get_unchecked_mut(dst + c) = *b.add((j0 + c) * ldb + l);
            }
            for c in nr..NR {
                *buf.get_unchecked_mut(dst + c) = 0.0;
            }
            dst += NR;
        }
        j0 += NR;
    }
}

/// Pack the `kc × nc` block of `Bᵀ` into `buf` as NR-column panels,
/// reading `B` as stored (column-major, leading dimension `ldb`): element
/// `(l, j0+c)` of `Bᵀ` is `B[j0+c, l]`, i.e. `b[l·ldb + j0 + c]`. The
/// packed layout is identical to [`pack_b`]'s, so the micro-kernel is
/// oblivious to the transpose. Panics if `buf` holds fewer than
/// `kc * round_up(nc, NR)` elements.
///
/// # Safety
///
/// `b` must be valid for reads over the addressed span of the *stored*
/// block (`(kc-1)·ldb + nc` elements).
pub unsafe fn pack_b_trans(kc: usize, nc: usize, b: *const f64, ldb: usize, buf: &mut [f64]) {
    // hard assert: the unchecked writes below are bounded by it
    assert!(
        buf.len() >= kc * round_up(nc, NR),
        "pack_b_trans buffer too small"
    );
    let mut dst = 0;
    let mut j0 = 0;
    while j0 < nc {
        let nr = NR.min(nc - j0);
        for l in 0..kc {
            for c in 0..nr {
                *buf.get_unchecked_mut(dst + c) = *b.add(l * ldb + (j0 + c));
            }
            for c in nr..NR {
                *buf.get_unchecked_mut(dst + c) = 0.0;
            }
            dst += NR;
        }
        j0 += NR;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_up_is_exact_on_multiples() {
        assert_eq!(round_up(0, MR), 0);
        assert_eq!(round_up(MR, MR), MR);
        assert_eq!(round_up(MR + 1, MR), 2 * MR);
    }

    #[test]
    fn pack_a_layout_and_padding() {
        // 5x3 block inside ld=7 storage, MR-panel layout with zero pad
        let (mc, kc, lda) = (5usize, 3usize, 7usize);
        let a: Vec<f64> = (0..lda * kc).map(|x| x as f64).collect();
        let mut buf = vec![f64::NAN; round_up(mc, MR) * kc];
        unsafe { pack_a(mc, kc, a.as_ptr(), lda, &mut buf) };
        for l in 0..kc {
            for i in 0..mc.min(MR) {
                assert_eq!(buf[l * MR + i], a[l * lda + i], "panel 0 ({i},{l})");
            }
            for i in mc.min(MR)..MR {
                assert_eq!(buf[l * MR + i], 0.0, "pad ({i},{l})");
            }
        }
        if mc > MR {
            for l in 0..kc {
                for i in 0..mc - MR {
                    assert_eq!(buf[kc * MR + l * MR + i], a[l * lda + MR + i]);
                }
                for i in mc - MR..MR {
                    assert_eq!(buf[kc * MR + l * MR + i], 0.0);
                }
            }
        }
    }

    #[test]
    fn pack_b_layout_and_padding() {
        let (kc, nc, ldb) = (3usize, NR + 1, 5usize);
        let b: Vec<f64> = (0..ldb * nc).map(|x| x as f64).collect();
        let mut buf = vec![f64::NAN; kc * round_up(nc, NR)];
        unsafe { pack_b(kc, nc, b.as_ptr(), ldb, &mut buf) };
        // panel 0: columns 0..NR row-by-row
        for l in 0..kc {
            for c in 0..NR {
                assert_eq!(buf[l * NR + c], b[c * ldb + l], "panel 0 ({l},{c})");
            }
        }
        // panel 1: one real column + NR-1 zero pad columns
        for l in 0..kc {
            assert_eq!(buf[kc * NR + l * NR], b[NR * ldb + l]);
            for c in 1..NR {
                assert_eq!(buf[kc * NR + l * NR + c], 0.0);
            }
        }
    }

    #[test]
    fn pack_b_trans_matches_pack_b_of_explicit_transpose() {
        // packing Bᵀ from stored B must equal packing an explicitly
        // transposed copy with pack_b
        let (kc, nc, ldb) = (5usize, NR + 3, 9usize);
        // stored B is nc × kc with leading dimension ldb
        let b: Vec<f64> = (0..ldb * kc).map(|x| (x * 7 % 23) as f64).collect();
        // explicit transpose: kc × nc, ld = kc
        let mut bt = vec![0.0f64; kc * nc];
        for l in 0..kc {
            for j in 0..nc {
                bt[j * kc + l] = b[l * ldb + j];
            }
        }
        let mut buf1 = vec![f64::NAN; kc * round_up(nc, NR)];
        let mut buf2 = vec![f64::NAN; kc * round_up(nc, NR)];
        unsafe {
            pack_b_trans(kc, nc, b.as_ptr(), ldb, &mut buf1);
            pack_b(kc, nc, bt.as_ptr(), kc, &mut buf2);
        }
        assert_eq!(buf1, buf2);
    }

    #[test]
    fn sized_for_never_regrows() {
        let b = 100;
        let mut s = GemmScratch::sized_for(b, b, b);
        let (pa, pb) = (s.a_pack.as_ptr(), s.b_pack.as_ptr());
        let (ca, cb) = (s.a_pack.capacity(), s.b_pack.capacity());
        for (m, n, k) in [(1, 1, 1), (b, b, b), (17, 93, 64), (b, 1, b)] {
            s.reserve(m, n, k);
        }
        assert_eq!(s.a_pack.as_ptr(), pa, "a_pack must not reallocate");
        assert_eq!(s.b_pack.as_ptr(), pb, "b_pack must not reallocate");
        assert_eq!((s.a_pack.capacity(), s.b_pack.capacity()), (ca, cb));
    }
}
