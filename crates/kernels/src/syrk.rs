//! Symmetric rank-k update — the Cholesky diagonal-tile update kernel.
//!
//! Task **S** of the tiled Cholesky updates a diagonal tile as
//! `A_ii ← A_ii − L_ik·L_ikᵀ`, which only needs the lower triangle:
//! [`dsyrk_ln`] computes `C ← α·A·Aᵀ + β·C` writing the lower triangle
//! of `C` (diagonal included) and never touching the strictly-upper
//! part. The rectangle below each diagonal block runs through the
//! packed NT GEMM ([`crate::gemm::dgemm_nt_packed`]); only the small
//! [`SYRK_NB`]-wide diagonal triangles use a scalar dot-product loop.

use crate::gemm::dgemm_nt_raw_packed;
use crate::pack::{with_thread_scratch, GemmScratch};

/// Column-block width of the blocked SYRK: each diagonal triangle this
/// wide is computed by scalar dot products, everything below it by GEMM.
pub const SYRK_NB: usize = 32;

/// `C ← α·A·Aᵀ + β·C` on the **lower** triangle of `C` (diagonal
/// included; the strictly-upper part is neither read nor written).
/// `A` is `n×k`, `C` is `n×n`, both column-major with leading dimensions
/// `lda`, `ldc`.
///
/// `β = 0` overwrites the lower triangle without reading it.
#[allow(clippy::too_many_arguments)]
pub fn dsyrk_ln_packed(
    n: usize,
    k: usize,
    alpha: f64,
    a: &[f64],
    lda: usize,
    beta: f64,
    c: &mut [f64],
    ldc: usize,
    scratch: &mut GemmScratch,
) {
    if n == 0 {
        return;
    }
    assert!(lda >= n && ldc >= n, "leading dimension too small");
    assert!(k == 0 || a.len() >= (k - 1) * lda + n, "a slice too short");
    assert!(c.len() >= (n - 1) * ldc + n, "c slice too short");
    // SAFETY: spans validated above; c is an exclusive borrow disjoint
    // from a.
    unsafe {
        syrk_ln_core(
            n,
            k,
            alpha,
            a.as_ptr(),
            lda,
            beta,
            c.as_mut_ptr(),
            ldc,
            scratch,
        )
    }
}

/// [`dsyrk_ln_packed`] with the per-thread scratch arena.
#[allow(clippy::too_many_arguments)]
pub fn dsyrk_ln(
    n: usize,
    k: usize,
    alpha: f64,
    a: &[f64],
    lda: usize,
    beta: f64,
    c: &mut [f64],
    ldc: usize,
) {
    with_thread_scratch(|s| dsyrk_ln_packed(n, k, alpha, a, lda, beta, c, ldc, s));
}

/// Raw-pointer variant of [`dsyrk_ln_packed`] for callers whose blocks
/// alias a single shared buffer (the parallel executor's tiles). Never
/// forms slices over the operands.
///
/// # Safety
///
/// `a` must be valid for the `n×k` span, `c` for the `n×n` span; `c`
/// must not overlap `a` element-wise, and the caller must have exclusive
/// access to `c`'s lower triangle.
#[allow(clippy::too_many_arguments)]
pub unsafe fn dsyrk_ln_raw_packed(
    n: usize,
    k: usize,
    alpha: f64,
    a: *const f64,
    lda: usize,
    beta: f64,
    c: *mut f64,
    ldc: usize,
    scratch: &mut GemmScratch,
) {
    if n == 0 {
        return;
    }
    assert!(lda >= n && ldc >= n, "leading dimension too small");
    syrk_ln_core(n, k, alpha, a, lda, beta, c, ldc, scratch);
}

/// The blocked driver: scalar dot products on each [`SYRK_NB`]-wide
/// diagonal triangle, packed NT GEMM for the rectangle below it. The dot
/// products accumulate in a fixed `l = 0..k` order, so the result is a
/// pure function of the inputs — the determinism the parallel executor's
/// bitwise-reproducibility contract relies on.
///
/// # Safety
///
/// See [`dsyrk_ln_raw_packed`].
#[allow(clippy::too_many_arguments)]
pub(crate) unsafe fn syrk_ln_core(
    n: usize,
    k: usize,
    alpha: f64,
    a: *const f64,
    lda: usize,
    beta: f64,
    c: *mut f64,
    ldc: usize,
    scratch: &mut GemmScratch,
) {
    let mut j0 = 0;
    while j0 < n {
        let jb = SYRK_NB.min(n - j0);
        // diagonal triangle: C[j0+j .. j0+jb, j0+j] for each local column
        for j in 0..jb {
            let jj = j0 + j;
            for i in jj..j0 + jb {
                let mut s = 0.0;
                for l in 0..k {
                    s += *a.add(l * lda + i) * *a.add(l * lda + jj);
                }
                let cp = c.add(jj * ldc + i);
                let old = if beta == 0.0 { 0.0 } else { beta * *cp };
                *cp = old + alpha * s;
            }
        }
        // rectangle below: C[j0+jb.., j0..j0+jb] += α·A[j0+jb..,:]·A[j0..j0+jb,:]ᵀ
        if j0 + jb < n {
            dgemm_nt_raw_packed(
                n - j0 - jb,
                jb,
                k,
                alpha,
                a.add(j0 + jb),
                lda,
                a.add(j0),
                lda,
                beta,
                c.add(j0 * ldc + j0 + jb),
                ldc,
                scratch,
            );
        }
        j0 += jb;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use calu_matrix::{gen, DenseMatrix};

    /// dense reference: lower triangle of α·A·Aᵀ + β·C
    fn syrk_ref(alpha: f64, a: &DenseMatrix, beta: f64, c: &DenseMatrix) -> DenseMatrix {
        let n = a.rows();
        let k = a.cols();
        DenseMatrix::from_fn(n, n, |i, j| {
            if i < j {
                c.get(i, j)
            } else {
                let dot: f64 = (0..k).map(|l| a.get(i, l) * a.get(j, l)).sum();
                beta * c.get(i, j) + alpha * dot
            }
        })
    }

    #[test]
    fn matches_reference_across_block_edges() {
        for (n, k, seed) in [
            (1, 1, 1),
            (5, 3, 2),
            (SYRK_NB - 1, 7, 3),
            (SYRK_NB, SYRK_NB, 4),
            (SYRK_NB + 1, 5, 5),
            (2 * SYRK_NB + 9, 17, 6),
        ] {
            let a = gen::uniform(n, k, seed);
            let c = gen::uniform(n, n, seed + 50);
            for (alpha, beta) in [(1.0, 1.0), (-1.0, 1.0), (2.0, 0.0)] {
                let mut got = c.clone();
                let ld = got.ld();
                dsyrk_ln(
                    n,
                    k,
                    alpha,
                    a.as_slice(),
                    a.ld(),
                    beta,
                    got.as_mut_slice(),
                    ld,
                );
                let want = syrk_ref(alpha, &a, beta, &c);
                assert!(
                    got.approx_eq(&want, 1e-11 * (k as f64).max(1.0)),
                    "shape ({n},{k}) alpha {alpha} beta {beta}"
                );
            }
        }
    }

    #[test]
    fn upper_triangle_is_never_touched() {
        let n = SYRK_NB + 6;
        let a = gen::uniform(n, 9, 7);
        let mut c = gen::uniform(n, n, 8);
        // poison the strictly-upper part: it must come through untouched
        for i in 0..n {
            for j in (i + 1)..n {
                c.set(i, j, f64::NAN);
            }
        }
        let ld = c.ld();
        dsyrk_ln(n, 9, -1.0, a.as_slice(), a.ld(), 1.0, c.as_mut_slice(), ld);
        for i in 0..n {
            for j in 0..n {
                if i < j {
                    assert!(c.get(i, j).is_nan(), "upper ({i},{j}) was written");
                } else {
                    assert!(c.get(i, j).is_finite(), "lower ({i},{j}) read the upper");
                }
            }
        }
    }

    #[test]
    fn beta_zero_overwrites_nan_lower() {
        let n = SYRK_NB + 2;
        let a = gen::uniform(n, 4, 9);
        let mut c = DenseMatrix::from_fn(n, n, |_, _| f64::NAN);
        let ld = c.ld();
        dsyrk_ln(n, 4, 1.0, a.as_slice(), a.ld(), 0.0, c.as_mut_slice(), ld);
        for i in 0..n {
            for j in 0..=i {
                assert!(c.get(i, j).is_finite(), "lower ({i},{j})");
            }
        }
    }

    #[test]
    fn k_zero_scales_lower_only() {
        let n = 6;
        let c0 = gen::uniform(n, n, 10);
        let mut c = c0.clone();
        let ld = c.ld();
        dsyrk_ln(n, 0, 1.0, &[], n, 0.5, c.as_mut_slice(), ld);
        for i in 0..n {
            for j in 0..n {
                let want = if i >= j {
                    0.5 * c0.get(i, j)
                } else {
                    c0.get(i, j)
                };
                assert_eq!(c.get(i, j), want, "({i},{j})");
            }
        }
    }
}
