//! The `MR × NR` register-tiled micro-kernel at the bottom of the
//! blocked GEMM.
//!
//! [`micro_tile`] multiplies one packed A row panel by one packed B
//! column panel, accumulating into an `MR × NR` tile held in a local
//! array. The loops over the tile are fully unrolled at compile time
//! (`MR`/`NR` are constants), so the accumulator lives in vector
//! registers and the `k` loop auto-vectorizes into multiply–add chains —
//! no intrinsics, no `unsafe`.
//!
//! [`store_tile`] then merges the accumulator into `C` with the
//! `α·acc + β·C` policy. The GEMM driver passes the caller's `β` only
//! for the **first** `KC` block of the `k` loop and `1.0` afterwards,
//! which folds the old separate β-scaling pass over `C` into the first
//! real visit of each tile.

use crate::gemm::{MR, NR};

/// `acc[j·MR + i] += Σ_l a[l·MR + i] · b[l·NR + j]` over `kc` steps of
/// packed panels (see [`crate::pack`] for the layouts). The panels must
/// hold at least `kc·MR` / `kc·NR` elements.
///
/// On x86-64 the same body is compiled twice: once at the build's
/// baseline ISA, and once under `#[target_feature(enable = "avx2,fma")]`
/// selected by runtime detection — the auto-vectorizer then emits 4-wide
/// FMA chains without a single intrinsic, and the binary still runs on
/// baseline hardware.
#[inline]
pub fn micro_tile(kc: usize, a: &[f64], b: &[f64]) -> [f64; MR * NR] {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma") {
        // SAFETY: the required CPU features were just detected.
        return unsafe { micro_tile_avx2fma(kc, a, b) };
    }
    micro_tile_body(kc, a, b)
}

/// [`micro_tile_body`] recompiled with AVX2 + FMA enabled.
///
/// # Safety
///
/// The CPU must support the `avx2` and `fma` target features.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn micro_tile_avx2fma(kc: usize, a: &[f64], b: &[f64]) -> [f64; MR * NR] {
    micro_tile_body(kc, a, b)
}

#[inline(always)]
fn micro_tile_body(kc: usize, a: &[f64], b: &[f64]) -> [f64; MR * NR] {
    // the accumulator is a by-value local, so the optimizer needs no
    // aliasing proof to keep the whole tile in vector registers
    let mut acc = [0.0; MR * NR];
    // chunks_exact pushes the bounds checks out of the k loop
    for (ap, bp) in a.chunks_exact(MR).zip(b.chunks_exact(NR)).take(kc) {
        for j in 0..NR {
            let blj = bp[j];
            for i in 0..MR {
                acc[j * MR + i] += ap[i] * blj;
            }
        }
    }
    acc
}

/// Merge the `mr × nr` live corner of an accumulator tile into `C`:
/// `C ← α·acc + β·C` (β = 0 overwrites without reading `C`, so garbage
/// or NaN in fresh output buffers never propagates).
///
/// # Safety
///
/// `c` must be valid for reads and writes over the `mr × nr` block with
/// leading dimension `ldc`, and the caller must have exclusive access
/// to it.
#[inline]
pub unsafe fn store_tile(
    acc: &[f64; MR * NR],
    alpha: f64,
    beta: f64,
    c: *mut f64,
    ldc: usize,
    mr: usize,
    nr: usize,
) {
    debug_assert!(mr <= MR && nr <= NR);
    for j in 0..nr {
        let cj = c.add(j * ldc);
        if beta == 0.0 {
            for i in 0..mr {
                *cj.add(i) = alpha * acc[j * MR + i];
            }
        } else if beta == 1.0 {
            for i in 0..mr {
                *cj.add(i) += alpha * acc[j * MR + i];
            }
        } else {
            for i in 0..mr {
                *cj.add(i) = beta * *cj.add(i) + alpha * acc[j * MR + i];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn micro_tile_matches_scalar_reference() {
        let kc = 5;
        let a: Vec<f64> = (0..kc * MR).map(|x| (x as f64).sin()).collect();
        let b: Vec<f64> = (0..kc * NR).map(|x| (x as f64).cos()).collect();
        let acc = micro_tile(kc, &a, &b);
        for j in 0..NR {
            for i in 0..MR {
                let want: f64 = (0..kc).map(|l| a[l * MR + i] * b[l * NR + j]).sum();
                assert!((acc[j * MR + i] - want).abs() < 1e-12, "({i},{j})");
            }
        }
    }

    #[test]
    fn store_tile_beta_policies() {
        let acc = {
            let mut t = [0.0; MR * NR];
            for (x, v) in t.iter_mut().enumerate() {
                *v = x as f64;
            }
            t
        };
        let ldc = MR + 2;
        // beta = 0 overwrites even NaN
        let mut c = vec![f64::NAN; ldc * NR];
        unsafe { store_tile(&acc, 2.0, 0.0, c.as_mut_ptr(), ldc, MR, NR) };
        assert_eq!(c[0], 0.0);
        assert_eq!(c[ldc], 2.0 * acc[MR]);
        // beta = 1 accumulates
        let mut c = vec![1.0; ldc * NR];
        unsafe { store_tile(&acc, 1.0, 1.0, c.as_mut_ptr(), ldc, MR, NR) };
        assert_eq!(c[1], 1.0 + acc[1]);
        // general beta scales
        let mut c = vec![2.0; ldc * NR];
        unsafe { store_tile(&acc, 1.0, 0.5, c.as_mut_ptr(), ldc, MR, NR) };
        assert_eq!(c[0], 1.0 + acc[0]);
        // partial corner leaves the rest untouched
        let mut c = vec![7.0; ldc * NR];
        unsafe { store_tile(&acc, 1.0, 0.0, c.as_mut_ptr(), ldc, 2, 1) };
        assert_eq!(c[2], 7.0, "row beyond mr untouched");
        assert_eq!(c[ldc], 7.0, "column beyond nr untouched");
    }
}
