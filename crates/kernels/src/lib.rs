//! Pure-Rust BLAS-3-style kernels for the CALU reproduction.
//!
//! The paper links against vendor BLAS (MKL/GotoBLAS); robust Rust BLAS
//! bindings are thin, so this crate implements the handful of kernels the
//! factorizations need, from scratch:
//!
//! * [`gemm::dgemm`] — `C ← α·A·B + β·C`, a GotoBLAS/BLIS-style packed,
//!   register-tiled kernel ([`pack`] + [`microkernel`]; see the
//!   [`gemm`] module docs for the MR/NR/MC/KC/NC blocking table),
//! * [`trsm`] — the two triangular solves LU needs, blocked so their
//!   trailing work runs through the packed GEMM,
//! * [`getrf::dgetf2`] — unblocked Gaussian elimination with partial
//!   pivoting,
//! * [`getrf::dgetrf_recursive`] — Toledo's recursive LU, the paper's
//!   choice of reduction operator inside TSLU (\[23\] in the paper),
//! * [`lu_nopiv`] — LU without pivoting (used after tournament pivoting
//!   has already placed good pivots on the diagonal),
//! * [`laswp::dlaswp`] — row interchanges,
//! * [`potrf`] / [`syrk`] — the Cholesky kernel set (`A = L·Lᵀ` panel
//!   factor and the lower-triangle rank-k update), layered on the same
//!   packed GEMM via its `A·Bᵀ` variant ([`gemm::dgemm_nt`]).
//!
//! Every kernel works on a column-major sub-block described by
//! `(slice, ld)` — the same addressing [`calu_matrix::storage::TileRef`]
//! exposes — so kernels run identically on all three data layouts.
//!
//! Hot loops pass a reusable [`GemmScratch`] packing arena into the
//! `*_packed` kernel variants (the threaded executor keeps one per
//! worker); the plain entry points fall back to a per-thread arena, so
//! no path allocates steady-state.
//!
//! Numerical contracts are tested against the textbook oracles in
//! [`calu_matrix::ops`].

pub mod gemm;
pub mod getrf;
pub mod laswp;
pub mod lu_nopiv;
pub mod microkernel;
pub mod pack;
pub mod potrf;
pub mod small;
pub mod syrk;
pub mod trsm;

pub use gemm::{
    dgemm, dgemm_jki, dgemm_nt, dgemm_nt_packed, dgemm_packed, dgemm_raw, dgemm_raw_packed,
};
pub use getrf::{dgetf2, dgetrf_recursive, dgetrf_recursive_packed};
pub use laswp::dlaswp;
pub use lu_nopiv::{lu_nopiv_blocked, lu_nopiv_unblocked};
pub use pack::GemmScratch;
pub use potrf::{dpotrf_blocked, dpotrf_unblocked};
pub use syrk::{dsyrk_ln, dsyrk_ln_packed};
pub use trsm::{
    dtrsm_left_lower_unit, dtrsm_left_lower_unit_packed, dtrsm_right_lower_trans,
    dtrsm_right_lower_trans_packed, dtrsm_right_lower_trans_unblocked, dtrsm_right_upper,
    dtrsm_right_upper_packed,
};

/// Floating-point operation counts for the kernels, used by the simulator
/// cost model and the Gflop/s reporting in the benches.
pub mod flops {
    /// Flops of `C ← C − A·B` with `A: m×k`, `B: k×n`.
    pub fn gemm(m: usize, n: usize, k: usize) -> f64 {
        2.0 * m as f64 * n as f64 * k as f64
    }

    /// Flops of a triangular solve with an `m×m` triangle and `n`
    /// right-hand sides.
    pub fn trsm(m: usize, n: usize) -> f64 {
        m as f64 * m as f64 * n as f64
    }

    /// Flops of GEPP on an `m×n` panel (`m >= n`):
    /// `n^2·m − n^3/3` to leading order.
    pub fn getrf(m: usize, n: usize) -> f64 {
        let (m, n) = (m as f64, n as f64);
        m * n * n - n * n * n / 3.0
    }

    /// Flops of a complete LU of an `n×n` matrix: `(2/3)·n^3` to leading
    /// order (the figure-of-merit used in all the paper's Gflop/s plots).
    pub fn lu(n: usize) -> f64 {
        let n = n as f64;
        2.0 * n * n * n / 3.0
    }

    /// Flops of a complete Cholesky of an `n×n` SPD matrix: `n^3/3` to
    /// leading order — half the LU count, the basis of the bench's
    /// "Cholesky ≤ 0.6× LU" gate.
    pub fn cholesky(n: usize) -> f64 {
        let n = n as f64;
        n * n * n / 3.0
    }
}

#[cfg(test)]
mod tests {
    use super::flops;

    #[test]
    fn flop_counts_scale_correctly() {
        assert_eq!(flops::gemm(10, 10, 10), 2000.0);
        assert!(flops::lu(1000) > flops::lu(500) * 7.9);
        // GEPP of a square matrix is ~ (2/3) n^3
        let n = 100;
        let ratio = flops::getrf(n, n) / flops::lu(n);
        assert!((ratio - 1.0).abs() < 1e-12);
        assert_eq!(flops::trsm(4, 8), 128.0);
    }
}
