//! Cholesky factorization of a symmetric positive-definite block:
//! `A = L·Lᵀ` with `L` lower triangular — the Cholesky panel kernel.
//!
//! Only the lower triangle of `A` is read or written; on return it holds
//! `L` (non-unit diagonal), the strictly-upper part is untouched. A
//! non-positive diagonal pivot — the matrix is not numerically SPD — is
//! flagged and skipped, mirroring the zero-pivot convention of
//! [`crate::lu_nopiv`]: elimination continues so the caller sees every
//! bad column, and the factorization drivers surface the first one.

use crate::pack::with_thread_scratch;
use crate::small::daxpy;
use crate::syrk::syrk_ln_core;
use crate::trsm::dtrsm_right_lower_trans_raw_packed;

/// Unblocked right-looking Cholesky of the `n × n` lower triangle at
/// `a` (column-major, leading dimension `lda`). Returns the first
/// column with a non-positive pivot, if any (elimination continues past
/// it, leaving that column unscaled).
pub fn dpotrf_unblocked(n: usize, a: &mut [f64], lda: usize) -> Option<usize> {
    if n == 0 {
        return None;
    }
    assert!(lda >= n, "lda too small");
    assert!(a.len() >= (n - 1) * lda + n, "block slice too short");
    let mut singular_at = None;
    for k in 0..n {
        let akk = a[k * lda + k];
        if akk <= 0.0 {
            if singular_at.is_none() {
                singular_at = Some(k);
            }
            continue;
        }
        let lkk = akk.sqrt();
        a[k * lda + k] = lkk;
        let inv = 1.0 / lkk;
        for v in &mut a[k * lda + k + 1..k * lda + n] {
            *v *= inv;
        }
        // trailing lower triangle: A[j.., j] −= L[j..,k]·L[j,k]
        for j in (k + 1)..n {
            let ljk = a[k * lda + j];
            if ljk == 0.0 {
                continue;
            }
            let (head, tail) = a.split_at_mut(j * lda);
            let lcol = &head[k * lda + j..k * lda + n];
            let ccol = &mut tail[j..n];
            daxpy(-ljk, lcol, ccol);
        }
    }
    singular_at
}

/// Blocked (right-looking) Cholesky with panel width `nb`: unblocked
/// factor of each diagonal block, [`crate::trsm::dtrsm_right_lower_trans`]
/// on the block column below it, then a lower-triangle rank-`nb` update
/// ([`crate::syrk::dsyrk_ln`]) of the trailing matrix — so asymptotically
/// all flops run through the packed NT GEMM. Identical result to
/// [`dpotrf_unblocked`] up to roundoff.
pub fn dpotrf_blocked(n: usize, a: &mut [f64], lda: usize, nb: usize) -> Option<usize> {
    assert!(nb > 0, "block size must be positive");
    if n == 0 {
        return None;
    }
    assert!(lda >= n, "lda too small");
    assert!(a.len() >= (n - 1) * lda + n, "block slice too short");
    let mut singular_at = None;
    let mut k0 = 0;
    while k0 < n {
        let kb = nb.min(n - k0);
        // Factor the diagonal block A[k0..k0+kb, k0..k0+kb] unblocked.
        let diag = &mut a[k0 * lda + k0..];
        if let Some(c) = dpotrf_unblocked(kb, diag, lda) {
            if singular_at.is_none() {
                singular_at = Some(k0 + c);
            }
        }
        let next = k0 + kb;
        if next < n {
            // SAFETY: the three blocks addressed — L11 (rows/cols
            // k0..next), A21 (rows next..n, cols k0..next) and A22
            // (rows/cols next..n, lower triangle) — are element-disjoint
            // regions of the validated n×n span.
            unsafe {
                let l11 = a.as_ptr().add(k0 * lda + k0);
                let a21 = a.as_mut_ptr().add(k0 * lda + next);
                let a22 = a.as_mut_ptr().add(next * lda + next);
                with_thread_scratch(|s| {
                    // A21 ← A21 · L11⁻ᵀ
                    dtrsm_right_lower_trans_raw_packed(n - next, kb, l11, lda, a21, lda, s);
                    // A22 (lower) ← A22 − A21·A21ᵀ
                    syrk_ln_core(n - next, kb, -1.0, a21 as *const f64, lda, 1.0, a22, lda, s);
                });
            }
        }
        k0 = next;
    }
    singular_at
}

#[cfg(test)]
mod tests {
    use super::*;
    use calu_matrix::{gen, DenseMatrix};

    /// symmetric strictly-diagonally-dominant (hence SPD) test matrix
    fn spd(n: usize, seed: u64) -> DenseMatrix {
        let r = gen::uniform(n, n, seed);
        DenseMatrix::from_fn(n, n, |i, j| {
            if i == j {
                n as f64
            } else {
                0.5 * (r.get(i, j) + r.get(j, i))
            }
        })
    }

    /// ‖A − L·Lᵀ‖_max reading only the factored lower triangle
    fn recon_err(a: &DenseMatrix, f: &DenseMatrix) -> f64 {
        let n = a.rows();
        let l = |i: usize, j: usize| if i >= j { f.get(i, j) } else { 0.0 };
        let mut worst = 0.0f64;
        for i in 0..n {
            for j in 0..n {
                let llt: f64 = (0..n).map(|k| l(i, k) * l(j, k)).sum();
                worst = worst.max((llt - a.get(i, j)).abs());
            }
        }
        worst
    }

    #[test]
    fn unblocked_factors_spd() {
        for n in [1, 3, 8, 30] {
            let a = spd(n, n as u64);
            let mut f = a.clone();
            let ld = f.ld();
            let s = dpotrf_unblocked(n, f.as_mut_slice(), ld);
            assert!(s.is_none(), "n={n}");
            assert!(recon_err(&a, &f) < 1e-10 * n as f64, "n={n}");
        }
    }

    #[test]
    fn blocked_matches_unblocked() {
        for (n, nb) in [(16, 4), (30, 7), (33, 8), (20, 32), (65, 16)] {
            let a = spd(n, 77);
            let mut f1 = a.clone();
            let mut f2 = a.clone();
            let ld = a.ld();
            dpotrf_unblocked(n, f1.as_mut_slice(), ld);
            dpotrf_blocked(n, f2.as_mut_slice(), ld, nb);
            for i in 0..n {
                for j in 0..=i {
                    let (x, y) = (f1.get(i, j), f2.get(i, j));
                    assert!((x - y).abs() < 1e-9, "n={n} nb={nb} ({i},{j}): {x} vs {y}");
                }
            }
        }
    }

    #[test]
    fn upper_triangle_is_never_read_or_written() {
        let n = 40;
        let clean = spd(n, 5);
        let mut poisoned = clean.clone();
        for i in 0..n {
            for j in (i + 1)..n {
                poisoned.set(i, j, f64::NAN);
            }
        }
        let mut f_clean = clean.clone();
        let mut f_poisoned = poisoned.clone();
        let ld = clean.ld();
        dpotrf_blocked(n, f_clean.as_mut_slice(), ld, 8);
        dpotrf_blocked(n, f_poisoned.as_mut_slice(), ld, 8);
        for i in 0..n {
            for j in 0..n {
                if i >= j {
                    assert_eq!(f_clean.get(i, j), f_poisoned.get(i, j), "lower ({i},{j})");
                } else {
                    assert!(f_poisoned.get(i, j).is_nan(), "upper ({i},{j}) was written");
                }
            }
        }
    }

    #[test]
    fn non_spd_pivot_is_reported() {
        // indefinite: a negative diagonal entry is hit during elimination
        let n = 5;
        let mut a = spd(n, 9);
        a.set(2, 2, -1.0);
        let mut f = a.clone();
        let ld = f.ld();
        let s = dpotrf_unblocked(n, f.as_mut_slice(), ld);
        assert_eq!(s, Some(2));
        // blocked path reports the same column
        let mut f2 = a.clone();
        let s2 = dpotrf_blocked(n, f2.as_mut_slice(), ld, 2);
        assert_eq!(s2, Some(2));
    }

    #[test]
    fn empty_is_noop() {
        let mut a: Vec<f64> = vec![];
        assert_eq!(dpotrf_unblocked(0, &mut a, 1), None);
        assert_eq!(dpotrf_blocked(0, &mut a, 1, 4), None);
    }
}
