//! LU factorization **without pivoting**.
//!
//! In CALU, once tournament pivoting has moved the selected pivot rows
//! onto the diagonal, the panel is factored with *no further pivoting*
//! (§2: "the second step computes the LU factorization with no pivoting of
//! the entire panel"). These kernels implement that step; they are also
//! reused by the incremental-pivoting baseline.

use crate::gemm::dgemm_raw;
use crate::small::daxpy;
use crate::trsm::dtrsm_left_lower_unit;

/// Unblocked LU without pivoting of an `m × n` column-major panel.
/// Returns the first column with a zero diagonal pivot, if any
/// (elimination continues past it).
pub fn lu_nopiv_unblocked(m: usize, n: usize, a: &mut [f64], lda: usize) -> Option<usize> {
    let kmax = m.min(n);
    if kmax == 0 {
        return None;
    }
    assert!(lda >= m, "lda too small");
    assert!(a.len() >= (n - 1) * lda + m, "panel slice too short");
    let mut singular_at = None;
    for k in 0..kmax {
        let akk = a[k * lda + k];
        if akk == 0.0 {
            if singular_at.is_none() {
                singular_at = Some(k);
            }
            continue;
        }
        let inv = 1.0 / akk;
        for v in &mut a[k * lda + k + 1..k * lda + m] {
            *v *= inv;
        }
        for j in (k + 1)..n {
            let akj = a[j * lda + k];
            if akj == 0.0 {
                continue;
            }
            let (head, tail) = a.split_at_mut(j * lda);
            let lcol = &head[k * lda + k + 1..k * lda + m];
            let ccol = &mut tail[k + 1..m];
            daxpy(-akj, lcol, ccol);
        }
    }
    singular_at
}

/// Blocked (right-looking) LU without pivoting with panel width `nb`.
/// Identical result to [`lu_nopiv_unblocked`] up to roundoff, but all
/// trailing work is BLAS-3.
pub fn lu_nopiv_blocked(m: usize, n: usize, a: &mut [f64], lda: usize, nb: usize) -> Option<usize> {
    assert!(nb > 0, "block size must be positive");
    let kmax = m.min(n);
    if kmax == 0 {
        return None;
    }
    assert!(lda >= m, "lda too small");
    let mut singular_at = None;
    let mut k0 = 0;
    while k0 < kmax {
        let kb = nb.min(kmax - k0);
        // Factor the panel A[k0..m, k0..k0+kb] unblocked.
        let panel = &mut a[k0 * lda + k0..];
        if let Some(c) = lu_nopiv_unblocked(m - k0, kb, panel, lda) {
            if singular_at.is_none() {
                singular_at = Some(k0 + c);
            }
        }
        let next = k0 + kb;
        if next < n {
            // U block row: A[k0..next, next..n] ← L(panel)⁻¹ · A[..]
            let (panel_cols, trailing) = a.split_at_mut(next * lda);
            let lkk = &panel_cols[k0 * lda + k0..];
            dtrsm_left_lower_unit(kb, n - next, lkk, lda, &mut trailing[k0..], lda);
            // Trailing update: A[next..m, next..n] −= A[next..m, k0..next] · U
            if next < m {
                unsafe {
                    let a21 = panel_cols.as_ptr().add(k0 * lda + next);
                    let u12 = trailing.as_ptr().add(k0);
                    let a22 = trailing.as_mut_ptr().add(next);
                    dgemm_raw(
                        m - next,
                        n - next,
                        kb,
                        -1.0,
                        a21,
                        lda,
                        u12,
                        lda,
                        1.0,
                        a22,
                        lda,
                    );
                }
            }
        }
        k0 = next;
    }
    singular_at
}

#[cfg(test)]
mod tests {
    use super::*;
    use calu_matrix::{gen, ops, DenseMatrix};

    fn check_lu(orig: &DenseMatrix, f: &DenseMatrix, tol: f64) {
        let lu = ops::matmul(&f.lower_unit(), &f.upper());
        assert!(
            lu.approx_eq(orig, tol),
            "A != LU, max diff {}",
            ops::sub(&lu, orig).max_abs()
        );
    }

    #[test]
    fn unblocked_on_diagonally_dominant() {
        for n in [1, 3, 8, 30] {
            let a = gen::diag_dominant(n, n as u64);
            let mut f = a.clone();
            let ld = f.ld();
            let s = lu_nopiv_unblocked(n, n, f.as_mut_slice(), ld);
            assert!(s.is_none());
            check_lu(&a, &f, 1e-9);
        }
    }

    #[test]
    fn blocked_matches_unblocked() {
        for (n, nb) in [(16, 4), (30, 7), (33, 8), (20, 32)] {
            let a = gen::diag_dominant(n, 77);
            let mut f1 = a.clone();
            let mut f2 = a.clone();
            let ld = a.ld();
            lu_nopiv_unblocked(n, n, f1.as_mut_slice(), ld);
            lu_nopiv_blocked(n, n, f2.as_mut_slice(), ld, nb);
            assert!(f1.approx_eq(&f2, 1e-9), "n={n} nb={nb}");
        }
    }

    #[test]
    fn tall_panel() {
        let a = {
            // tall panel whose top square is dominant so no pivoting needed
            let mut a = gen::uniform(12, 4, 5);
            for i in 0..4 {
                let v = a.get(i, i);
                a.set(i, i, v + 8.0);
            }
            a
        };
        let mut f = a.clone();
        let ld = f.ld();
        let s = lu_nopiv_unblocked(12, 4, f.as_mut_slice(), ld);
        assert!(s.is_none());
        check_lu(&a, &f, 1e-10);
    }

    #[test]
    fn zero_diagonal_is_reported() {
        let mut a = DenseMatrix::zeros(3, 3);
        a.set(0, 0, 0.0);
        a.set(1, 1, 1.0);
        a.set(2, 2, 1.0);
        let ld = a.ld();
        let s = lu_nopiv_unblocked(3, 3, a.as_mut_slice(), ld);
        assert_eq!(s, Some(0));
        let mut b = gen::diag_dominant(6, 3);
        b.set(4, 4, 0.0);
        // make column 4 below diag zero too so elimination really hits 0
        for i in 5..6 {
            b.set(i, 4, 0.0);
        }
        // the flag may fire at 4 only if the eliminated value is exactly 0,
        // which updates can break; just check it factors without panic
        let ld = b.ld();
        let _ = lu_nopiv_blocked(6, 6, b.as_mut_slice(), ld, 2);
    }

    #[test]
    fn empty_is_noop() {
        let mut a: Vec<f64> = vec![];
        assert_eq!(lu_nopiv_unblocked(0, 0, &mut a, 1), None);
        assert_eq!(lu_nopiv_blocked(0, 4, &mut a, 1, 2), None);
    }
}
