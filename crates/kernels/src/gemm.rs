//! General matrix multiply `C ← α·A·B + β·C` on column-major sub-blocks.
//!
//! This is the kernel behind task **S** (trailing-matrix update), which
//! dominates the flops of the factorization (§2). The implementation is a
//! cache-blocked `j-k-i` loop: the innermost loop is a contiguous AXPY
//! over a column of `A` and a column of `C`, which the compiler
//! auto-vectorizes, and the `k` dimension is blocked so the active panel
//! of `A` stays in cache.

use crate::small::daxpy;

/// Panel width of the k-blocking (columns of A kept hot in cache).
const KC: usize = 128;

/// `C ← α·A·B + β·C` with `A: m×k`, `B: k×n`, `C: m×n`, all column-major
/// with leading dimensions `lda/ldb/ldc` (slices start at each block's
/// `(0,0)` element).
///
/// Panics if a leading dimension is smaller than the block height or if a
/// slice is too short for the addressed span.
#[allow(clippy::too_many_arguments)]
pub fn dgemm(
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    a: &[f64],
    lda: usize,
    b: &[f64],
    ldb: usize,
    beta: f64,
    c: &mut [f64],
    ldc: usize,
) {
    if m == 0 || n == 0 {
        return;
    }
    assert!(
        lda >= m && ldc >= m,
        "leading dimension too small for block height"
    );
    assert!(k == 0 || ldb >= k, "ldb too small");
    assert!(a.len() >= span(m, k, lda), "a slice too short");
    assert!(b.len() >= span(k, n, ldb), "b slice too short");
    assert!(c.len() >= span(m, n, ldc), "c slice too short");

    // β-scaling of C.
    if beta != 1.0 {
        for j in 0..n {
            let col = &mut c[j * ldc..j * ldc + m];
            if beta == 0.0 {
                col.fill(0.0);
            } else {
                for v in col {
                    *v *= beta;
                }
            }
        }
    }
    if k == 0 || alpha == 0.0 {
        return;
    }

    // k-blocked jki loop.
    let mut l0 = 0;
    while l0 < k {
        let lb = KC.min(k - l0);
        for j in 0..n {
            let (c_lo, c_hi) = (j * ldc, j * ldc + m);
            // Split borrows: B column entries are read scalar-wise.
            for l in l0..l0 + lb {
                let blj = alpha * b[l + j * ldb];
                if blj == 0.0 {
                    continue;
                }
                let a_col = &a[l * lda..l * lda + m];
                let c_col = &mut c[c_lo..c_hi];
                daxpy(blj, a_col, c_col);
            }
        }
        l0 += lb;
    }
}

/// Raw-pointer variant of [`dgemm`] for callers (the parallel executor)
/// whose tiles alias a single shared buffer.
///
/// # Safety
///
/// The three blocks must be valid for the spans they address
/// (`(cols−1)·ld + rows` elements each), `c` must not overlap `a` or `b`,
/// and the caller must guarantee exclusive access to `c` for the duration
/// of the call.
#[allow(clippy::too_many_arguments)]
pub unsafe fn dgemm_raw(
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    a: *const f64,
    lda: usize,
    b: *const f64,
    ldb: usize,
    beta: f64,
    c: *mut f64,
    ldc: usize,
) {
    if m == 0 || n == 0 {
        return;
    }
    let a = std::slice::from_raw_parts(a, span(m, k, lda));
    let b = std::slice::from_raw_parts(b, span(k, n, ldb));
    let c = std::slice::from_raw_parts_mut(c, span(m, n, ldc));
    dgemm(m, n, k, alpha, a, lda, b, ldb, beta, c, ldc);
}

/// Elements spanned by an `r × c` block with leading dimension `ld`.
#[inline]
fn span(r: usize, c: usize, ld: usize) -> usize {
    if r == 0 || c == 0 {
        0
    } else {
        (c - 1) * ld + r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use calu_matrix::{gen, ops, DenseMatrix};

    fn dgemm_dense(
        alpha: f64,
        a: &DenseMatrix,
        b: &DenseMatrix,
        beta: f64,
        c: &DenseMatrix,
    ) -> DenseMatrix {
        let mut out = c.clone();
        dgemm(
            a.rows(),
            b.cols(),
            a.cols(),
            alpha,
            a.as_slice(),
            a.ld(),
            b.as_slice(),
            b.ld(),
            beta,
            out.as_mut_slice(),
            c.ld(),
        );
        out
    }

    #[test]
    fn matches_reference_on_random_shapes() {
        for (m, n, k, seed) in [
            (5, 7, 3, 1),
            (16, 16, 16, 2),
            (33, 17, 129, 3),
            (1, 9, 4, 4),
            (64, 1, 200, 5),
        ] {
            let a = gen::uniform(m, k, seed);
            let b = gen::uniform(k, n, seed + 100);
            let c = gen::uniform(m, n, seed + 200);
            let got = dgemm_dense(1.0, &a, &b, 1.0, &c);
            let want = ops::add(&ops::matmul(&a, &b), &c);
            assert!(got.approx_eq(&want, 1e-11), "shape ({m},{n},{k})");
        }
    }

    #[test]
    fn alpha_beta_combinations() {
        let a = gen::uniform(8, 6, 10);
        let b = gen::uniform(6, 5, 11);
        let c = gen::uniform(8, 5, 12);
        // beta = 0 overwrites C entirely (even NaN-free from garbage C)
        let got = dgemm_dense(2.0, &a, &b, 0.0, &c);
        let want = ops::scale(2.0, &ops::matmul(&a, &b));
        assert!(got.approx_eq(&want, 1e-12));
        // alpha = 0, beta = 2 just scales C
        let got = dgemm_dense(0.0, &a, &b, 2.0, &c);
        assert!(got.approx_eq(&ops::scale(2.0, &c), 1e-12));
        // alpha = -1, beta = 1 is the update kernel of task S
        let got = dgemm_dense(-1.0, &a, &b, 1.0, &c);
        let want = ops::sub(&c, &ops::matmul(&a, &b));
        assert!(got.approx_eq(&want, 1e-12));
    }

    #[test]
    fn submatrix_with_leading_dimension() {
        // Multiply 3x3 blocks living inside 10x10 parents.
        let pa = gen::uniform(10, 10, 20);
        let pb = gen::uniform(10, 10, 21);
        let mut pc = gen::uniform(10, 10, 22);
        let (r, c, sz) = (2, 4, 3);
        let a = pa.submatrix(r, c, sz, sz);
        let b = pb.submatrix(r, c, sz, sz);
        let c0 = pc.submatrix(r, c, sz, sz);
        let off = c * 10 + r;
        // run on the parent slices with ld = 10
        let (pa_s, pb_s) = (pa.as_slice(), pb.as_slice());
        let pc_s = pc.as_mut_slice();
        dgemm(
            sz,
            sz,
            sz,
            1.0,
            &pa_s[off..],
            10,
            &pb_s[off..],
            10,
            1.0,
            &mut pc_s[off..],
            10,
        );
        let want = ops::add(&ops::matmul(&a, &b), &c0);
        let got = pc.submatrix(r, c, sz, sz);
        assert!(got.approx_eq(&want, 1e-12));
        // elements outside the target block untouched
        assert_eq!(pc.get(0, 0), gen::uniform(10, 10, 22).get(0, 0));
    }

    #[test]
    fn k_zero_only_scales() {
        let mut c = gen::uniform(4, 4, 30);
        let orig = c.clone();
        let (rows, ld) = (c.rows(), c.ld());
        dgemm(
            rows,
            rows,
            0,
            1.0,
            &[],
            4,
            &[],
            4,
            0.5,
            c.as_mut_slice(),
            ld,
        );
        assert!(c.approx_eq(&ops::scale(0.5, &orig), 1e-14));
    }

    #[test]
    fn empty_dims_are_noops() {
        let mut c: Vec<f64> = vec![];
        dgemm(0, 0, 5, 1.0, &[1.0; 5], 1, &[1.0; 5], 5, 1.0, &mut c, 1);
    }

    #[test]
    fn raw_variant_matches_safe() {
        let a = gen::uniform(6, 4, 40);
        let b = gen::uniform(4, 5, 41);
        let c = gen::uniform(6, 5, 42);
        let mut c1 = c.clone();
        let mut c2 = c.clone();
        dgemm(
            6,
            5,
            4,
            -1.0,
            a.as_slice(),
            6,
            b.as_slice(),
            4,
            1.0,
            c1.as_mut_slice(),
            6,
        );
        unsafe {
            dgemm_raw(
                6,
                5,
                4,
                -1.0,
                a.as_slice().as_ptr(),
                6,
                b.as_slice().as_ptr(),
                4,
                1.0,
                c2.as_mut_slice().as_mut_ptr(),
                6,
            );
        }
        assert!(c1.approx_eq(&c2, 0.0));
    }

    #[test]
    #[should_panic(expected = "leading dimension")]
    fn rejects_bad_ld() {
        let mut c = vec![0.0; 16];
        dgemm(4, 4, 4, 1.0, &[0.0; 16], 3, &[0.0; 16], 4, 0.0, &mut c, 4);
    }

    #[test]
    fn large_k_blocking_path() {
        // k > KC exercises the blocked loop
        let a = gen::uniform(7, 300, 50);
        let b = gen::uniform(300, 6, 51);
        let c = DenseMatrix::zeros(7, 6);
        let got = dgemm_dense(1.0, &a, &b, 0.0, &c);
        let want = ops::matmul(&a, &b);
        assert!(got.approx_eq(&want, 1e-10));
    }
}
