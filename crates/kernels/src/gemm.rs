//! General matrix multiply `C ← α·A·B + β·C` on column-major sub-blocks.
//!
//! This is the kernel behind task **S** (trailing-matrix update), which
//! dominates the flops of the factorization (§2). The implementation is
//! the GotoBLAS/BLIS three-level blocked algorithm: `A` and `B` are
//! copied into contiguous packed panels once per cache block
//! ([`crate::pack`]) and multiplied by an `MR × NR` register-tiled
//! micro-kernel ([`crate::microkernel`]), with the caller's `β` folded
//! into the first `KC` block of the `k` loop instead of a separate
//! scaling pass over `C`.
//!
//! ## Blocking parameters
//!
//! | Constant | Value | Role |
//! |----------|-------|------|
//! | [`MR`]   | 8     | rows of the register tile: one packed-A panel feeds `MR` accumulator rows |
//! | [`NR`]   | 4     | columns of the register tile: one packed-B panel feeds `NR` accumulator columns |
//! | [`MC`]   | 128   | rows of the packed A block (`MC × KC` ≈ 256 KiB, sized for L2) |
//! | [`KC`]   | 256   | depth of one pack-and-multiply pass (`KC × NR` B panel ≈ 8 KiB, hot in L1) |
//! | [`NC`]   | 2048  | columns of the packed B block (`KC × NC` ≈ 4 MiB, sized for L3) |
//!
//! The simulator's kernel-efficiency table
//! (`calu_sim::cost::kernel_eff`) is calibrated against these kernels;
//! re-tune it if the constants change materially.
//!
//! The seed `j-k-i` AXPY kernel is kept as [`dgemm_jki`] — the parity
//! oracle for tests and the speedup baseline for the `kernels` bench.

use crate::microkernel::{micro_tile, store_tile};
use crate::pack::{pack_a, pack_b, pack_b_trans, with_thread_scratch, GemmScratch};
use crate::small::daxpy;

/// Rows of the register tile (micro-kernel height).
pub const MR: usize = 8;
/// Columns of the register tile (micro-kernel width).
pub const NR: usize = 4;
/// Rows of one packed `A` cache block; a multiple of [`MR`].
pub const MC: usize = 128;
/// Depth of one packed block pair (the `k`-blocking).
pub const KC: usize = 256;
/// Columns of one packed `B` cache block; a multiple of [`NR`].
pub const NC: usize = 2048;

const _: () = assert!(MC.is_multiple_of(MR), "MC must be a multiple of MR");
const _: () = assert!(NC.is_multiple_of(NR), "NC must be a multiple of NR");

/// `C ← α·A·B + β·C` with `A: m×k`, `B: k×n`, `C: m×n`, all column-major
/// with leading dimensions `lda/ldb/ldc` (slices start at each block's
/// `(0,0)` element). Packing buffers come from `scratch`, so a caller
/// that reuses one arena across calls (the threaded executor's
/// per-worker scratch) performs no heap allocation here.
///
/// Panics if a leading dimension is smaller than the block height or if a
/// slice is too short for the addressed span.
#[allow(clippy::too_many_arguments)]
pub fn dgemm_packed(
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    a: &[f64],
    lda: usize,
    b: &[f64],
    ldb: usize,
    beta: f64,
    c: &mut [f64],
    ldc: usize,
    scratch: &mut GemmScratch,
) {
    if m == 0 || n == 0 {
        return;
    }
    assert!(
        lda >= m && ldc >= m,
        "leading dimension too small for block height"
    );
    assert!(k == 0 || ldb >= k, "ldb too small");
    assert!(a.len() >= span(m, k, lda), "a slice too short");
    assert!(b.len() >= span(k, n, ldb), "b slice too short");
    assert!(c.len() >= span(m, n, ldc), "c slice too short");
    // SAFETY: dimensions checked against the slice lengths above; the
    // borrow rules guarantee c is exclusive and disjoint from a and b.
    unsafe {
        dgemm_core(
            m,
            n,
            k,
            alpha,
            a.as_ptr(),
            lda,
            b.as_ptr(),
            ldb,
            beta,
            c.as_mut_ptr(),
            ldc,
            scratch,
        );
    }
}

/// [`dgemm_packed`] with a per-thread scratch arena — the convenience
/// entry point for callers without a hot loop (tests, examples, the
/// sequential baselines). The arena is allocated once per thread and
/// reused, so even this path does not hit the allocator steady-state.
#[allow(clippy::too_many_arguments)]
pub fn dgemm(
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    a: &[f64],
    lda: usize,
    b: &[f64],
    ldb: usize,
    beta: f64,
    c: &mut [f64],
    ldc: usize,
) {
    with_thread_scratch(|s| dgemm_packed(m, n, k, alpha, a, lda, b, ldb, beta, c, ldc, s));
}

/// Raw-pointer variant of [`dgemm_packed`] for callers (the parallel
/// executor, the in-place factorizations) whose blocks alias a single
/// shared buffer. Never forms slices over the operands, so
/// element-disjoint but span-overlapping blocks are fine.
///
/// # Safety
///
/// The three blocks must be valid for the spans they address
/// (`(cols−1)·ld + rows` elements each), `c` must not overlap `a` or `b`
/// element-wise, and the caller must guarantee exclusive access to `c`
/// for the duration of the call.
#[allow(clippy::too_many_arguments)]
pub unsafe fn dgemm_raw_packed(
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    a: *const f64,
    lda: usize,
    b: *const f64,
    ldb: usize,
    beta: f64,
    c: *mut f64,
    ldc: usize,
    scratch: &mut GemmScratch,
) {
    if m == 0 || n == 0 {
        return;
    }
    assert!(
        lda >= m && ldc >= m,
        "leading dimension too small for block height"
    );
    assert!(k == 0 || ldb >= k, "ldb too small");
    dgemm_core(m, n, k, alpha, a, lda, b, ldb, beta, c, ldc, scratch);
}

/// Raw-pointer variant of [`dgemm`] (per-thread scratch arena).
///
/// # Safety
///
/// Same contract as [`dgemm_raw_packed`].
#[allow(clippy::too_many_arguments)]
pub unsafe fn dgemm_raw(
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    a: *const f64,
    lda: usize,
    b: *const f64,
    ldb: usize,
    beta: f64,
    c: *mut f64,
    ldc: usize,
) {
    with_thread_scratch(|s| dgemm_raw_packed(m, n, k, alpha, a, lda, b, ldb, beta, c, ldc, s));
}

/// The five-loop blocked driver. Dimensions are pre-validated.
///
/// # Safety
///
/// See [`dgemm_raw_packed`].
#[allow(clippy::too_many_arguments)]
unsafe fn dgemm_core(
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    a: *const f64,
    lda: usize,
    b: *const f64,
    ldb: usize,
    beta: f64,
    c: *mut f64,
    ldc: usize,
    scratch: &mut GemmScratch,
) {
    if k == 0 || alpha == 0.0 {
        scale_c(beta, c, ldc, m, n);
        return;
    }
    scratch.reserve(m, n, k);
    let mut jc = 0;
    while jc < n {
        let nc = NC.min(n - jc);
        let mut pc = 0;
        while pc < k {
            let kc = KC.min(k - pc);
            // β is applied on each tile's first visit (pc == 0) and the
            // later k blocks accumulate — the old standalone β pass
            // folded into the first real traversal of C
            let beta_eff = if pc == 0 { beta } else { 1.0 };
            pack_b(kc, nc, b.add(jc * ldb + pc), ldb, &mut scratch.b_pack);
            let mut ic = 0;
            while ic < m {
                let mc = MC.min(m - ic);
                pack_a(mc, kc, a.add(pc * lda + ic), lda, &mut scratch.a_pack);
                let mut jr = 0;
                while jr < nc {
                    let nr = NR.min(nc - jr);
                    let bp = &scratch.b_pack[jr * kc..jr * kc + kc * NR];
                    let mut ir = 0;
                    while ir < mc {
                        let mr = MR.min(mc - ir);
                        let ap = &scratch.a_pack[ir * kc..ir * kc + kc * MR];
                        let acc = micro_tile(kc, ap, bp);
                        store_tile(
                            &acc,
                            alpha,
                            beta_eff,
                            c.add((jc + jr) * ldc + ic + ir),
                            ldc,
                            mr,
                            nr,
                        );
                        ir += MR;
                    }
                    jr += NR;
                }
                ic += MC;
            }
            pc += KC;
        }
        jc += NC;
    }
}

/// `C ← α·A·Bᵀ + β·C` with `A: m×k`, `B` **stored** `n×k` (so `Bᵀ` is
/// `k×n`), `C: m×n`, all column-major with leading dimensions
/// `lda/ldb/ldc`. The transpose is absorbed in the packing stage
/// ([`pack_b_trans`]); blocking and the micro-kernel are identical to
/// [`dgemm_packed`]. This is the kernel behind the Cholesky trailing
/// update `A_ij ← A_ij − L_ik·L_jkᵀ` and the rectangle of SYRK.
///
/// Panics if a leading dimension is smaller than its block height
/// (`lda ≥ m`, `ldb ≥ n`, `ldc ≥ m`) or a slice is too short for the
/// addressed span.
#[allow(clippy::too_many_arguments)]
pub fn dgemm_nt_packed(
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    a: &[f64],
    lda: usize,
    b: &[f64],
    ldb: usize,
    beta: f64,
    c: &mut [f64],
    ldc: usize,
    scratch: &mut GemmScratch,
) {
    if m == 0 || n == 0 {
        return;
    }
    assert!(
        lda >= m && ldc >= m,
        "leading dimension too small for block height"
    );
    assert!(ldb >= n, "ldb too small");
    assert!(a.len() >= span(m, k, lda), "a slice too short");
    assert!(b.len() >= span(n, k, ldb), "b slice too short");
    assert!(c.len() >= span(m, n, ldc), "c slice too short");
    // SAFETY: dimensions checked against the slice lengths above; the
    // borrow rules guarantee c is exclusive and disjoint from a and b.
    unsafe {
        dgemm_nt_core(
            m,
            n,
            k,
            alpha,
            a.as_ptr(),
            lda,
            b.as_ptr(),
            ldb,
            beta,
            c.as_mut_ptr(),
            ldc,
            scratch,
        );
    }
}

/// [`dgemm_nt_packed`] with the per-thread scratch arena.
#[allow(clippy::too_many_arguments)]
pub fn dgemm_nt(
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    a: &[f64],
    lda: usize,
    b: &[f64],
    ldb: usize,
    beta: f64,
    c: &mut [f64],
    ldc: usize,
) {
    with_thread_scratch(|s| dgemm_nt_packed(m, n, k, alpha, a, lda, b, ldb, beta, c, ldc, s));
}

/// Raw-pointer variant of [`dgemm_nt_packed`] for callers whose blocks
/// alias a single shared buffer (the parallel executor's tiles). Never
/// forms slices over the operands.
///
/// # Safety
///
/// `a` must be valid for the `m×k` span, `b` for the *stored* `n×k`
/// span, `c` for the `m×n` span; `c` must not overlap `a` or `b`
/// element-wise, and the caller must have exclusive access to `c`.
#[allow(clippy::too_many_arguments)]
pub unsafe fn dgemm_nt_raw_packed(
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    a: *const f64,
    lda: usize,
    b: *const f64,
    ldb: usize,
    beta: f64,
    c: *mut f64,
    ldc: usize,
    scratch: &mut GemmScratch,
) {
    if m == 0 || n == 0 {
        return;
    }
    assert!(
        lda >= m && ldc >= m,
        "leading dimension too small for block height"
    );
    assert!(ldb >= n, "ldb too small");
    dgemm_nt_core(m, n, k, alpha, a, lda, b, ldb, beta, c, ldc, scratch);
}

/// The five-loop blocked driver of the NT product. Identical to
/// [`dgemm_core`] except the `(pc, jc)` block of `Bᵀ` is located in the
/// stored `B` at `b + pc·ldb + jc` and packed through [`pack_b_trans`].
///
/// # Safety
///
/// See [`dgemm_nt_raw_packed`].
#[allow(clippy::too_many_arguments)]
unsafe fn dgemm_nt_core(
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    a: *const f64,
    lda: usize,
    b: *const f64,
    ldb: usize,
    beta: f64,
    c: *mut f64,
    ldc: usize,
    scratch: &mut GemmScratch,
) {
    if k == 0 || alpha == 0.0 {
        scale_c(beta, c, ldc, m, n);
        return;
    }
    scratch.reserve(m, n, k);
    let mut jc = 0;
    while jc < n {
        let nc = NC.min(n - jc);
        let mut pc = 0;
        while pc < k {
            let kc = KC.min(k - pc);
            let beta_eff = if pc == 0 { beta } else { 1.0 };
            pack_b_trans(kc, nc, b.add(pc * ldb + jc), ldb, &mut scratch.b_pack);
            let mut ic = 0;
            while ic < m {
                let mc = MC.min(m - ic);
                pack_a(mc, kc, a.add(pc * lda + ic), lda, &mut scratch.a_pack);
                let mut jr = 0;
                while jr < nc {
                    let nr = NR.min(nc - jr);
                    let bp = &scratch.b_pack[jr * kc..jr * kc + kc * NR];
                    let mut ir = 0;
                    while ir < mc {
                        let mr = MR.min(mc - ir);
                        let ap = &scratch.a_pack[ir * kc..ir * kc + kc * MR];
                        let acc = micro_tile(kc, ap, bp);
                        store_tile(
                            &acc,
                            alpha,
                            beta_eff,
                            c.add((jc + jr) * ldc + ic + ir),
                            ldc,
                            mr,
                            nr,
                        );
                        ir += MR;
                    }
                    jr += NR;
                }
                ic += MC;
            }
            pc += KC;
        }
        jc += NC;
    }
}

/// `C ← β·C` for the degenerate `k = 0` / `α = 0` cases (β = 0
/// overwrites without reading).
///
/// # Safety
///
/// `c` must be valid for the `m × n` span with leading dimension `ldc`.
unsafe fn scale_c(beta: f64, c: *mut f64, ldc: usize, m: usize, n: usize) {
    if beta == 1.0 {
        return;
    }
    for j in 0..n {
        let cj = c.add(j * ldc);
        if beta == 0.0 {
            for i in 0..m {
                *cj.add(i) = 0.0;
            }
        } else {
            for i in 0..m {
                *cj.add(i) *= beta;
            }
        }
    }
}

/// Panel width of the k-blocking in [`dgemm_jki`].
const JKI_KC: usize = 128;

/// The seed kernel: a cache-blocked `j-k-i` loop whose inner loop is a
/// contiguous AXPY over a column of `A` and a column of `C`. Kept as the
/// parity oracle for the packed kernel's tests and the speedup baseline
/// reported by the `kernels` bench; not used by the factorizations.
#[allow(clippy::too_many_arguments)]
pub fn dgemm_jki(
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    a: &[f64],
    lda: usize,
    b: &[f64],
    ldb: usize,
    beta: f64,
    c: &mut [f64],
    ldc: usize,
) {
    if m == 0 || n == 0 {
        return;
    }
    assert!(
        lda >= m && ldc >= m,
        "leading dimension too small for block height"
    );
    assert!(k == 0 || ldb >= k, "ldb too small");
    assert!(a.len() >= span(m, k, lda), "a slice too short");
    assert!(b.len() >= span(k, n, ldb), "b slice too short");
    assert!(c.len() >= span(m, n, ldc), "c slice too short");

    if beta != 1.0 {
        for j in 0..n {
            let col = &mut c[j * ldc..j * ldc + m];
            if beta == 0.0 {
                col.fill(0.0);
            } else {
                for v in col {
                    *v *= beta;
                }
            }
        }
    }
    if k == 0 || alpha == 0.0 {
        return;
    }
    let mut l0 = 0;
    while l0 < k {
        let lb = JKI_KC.min(k - l0);
        for j in 0..n {
            let (c_lo, c_hi) = (j * ldc, j * ldc + m);
            for l in l0..l0 + lb {
                let blj = alpha * b[l + j * ldb];
                if blj == 0.0 {
                    continue;
                }
                let a_col = &a[l * lda..l * lda + m];
                let c_col = &mut c[c_lo..c_hi];
                daxpy(blj, a_col, c_col);
            }
        }
        l0 += lb;
    }
}

/// Elements spanned by an `r × c` block with leading dimension `ld`.
#[inline]
fn span(r: usize, c: usize, ld: usize) -> usize {
    if r == 0 || c == 0 {
        0
    } else {
        (c - 1) * ld + r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use calu_matrix::{gen, ops, DenseMatrix};

    fn dgemm_dense(
        alpha: f64,
        a: &DenseMatrix,
        b: &DenseMatrix,
        beta: f64,
        c: &DenseMatrix,
    ) -> DenseMatrix {
        let mut out = c.clone();
        dgemm(
            a.rows(),
            b.cols(),
            a.cols(),
            alpha,
            a.as_slice(),
            a.ld(),
            b.as_slice(),
            b.ld(),
            beta,
            out.as_mut_slice(),
            c.ld(),
        );
        out
    }

    #[test]
    fn matches_reference_on_random_shapes() {
        for (m, n, k, seed) in [
            (5, 7, 3, 1),
            (16, 16, 16, 2),
            (33, 17, 129, 3),
            (1, 9, 4, 4),
            (64, 1, 200, 5),
        ] {
            let a = gen::uniform(m, k, seed);
            let b = gen::uniform(k, n, seed + 100);
            let c = gen::uniform(m, n, seed + 200);
            let got = dgemm_dense(1.0, &a, &b, 1.0, &c);
            let want = ops::add(&ops::matmul(&a, &b), &c);
            assert!(got.approx_eq(&want, 1e-11), "shape ({m},{n},{k})");
        }
    }

    #[test]
    fn matches_jki_kernel_on_awkward_shapes() {
        // every register-tile edge case: below/at/above MR and NR, plus
        // k straddling the KC boundary so the β-folding path runs
        for (m, n, k, seed) in [
            (MR - 1, NR - 1, 7, 1),
            (MR, NR, 1, 2),
            (MR + 1, NR + 1, KC, 3),
            (3 * MR + 5, 2 * NR + 3, KC + 9, 4),
            (MC + MR + 2, NR, 33, 5),
            (1, 1, KC + 1, 6),
            (2 * MC + 3, 3 * NR + 1, 2 * KC + 5, 7),
        ] {
            let a = gen::uniform(m, k, seed);
            let b = gen::uniform(k, n, seed + 10);
            let c = gen::uniform(m, n, seed + 20);
            for (alpha, beta) in [(1.0, 1.0), (-1.0, 1.0), (2.0, 0.0), (0.5, -0.5)] {
                let got = dgemm_dense(alpha, &a, &b, beta, &c);
                let mut want = c.clone();
                dgemm_jki(
                    m,
                    n,
                    k,
                    alpha,
                    a.as_slice(),
                    a.ld(),
                    b.as_slice(),
                    b.ld(),
                    beta,
                    want.as_mut_slice(),
                    c.ld(),
                );
                let tol = 1e-11 * (k as f64).max(1.0);
                assert!(
                    got.approx_eq(&want, tol),
                    "shape ({m},{n},{k}) alpha {alpha} beta {beta}"
                );
            }
        }
    }

    #[test]
    fn beta_zero_overwrites_nan_output() {
        // β = 0 must never read C: a fresh buffer full of NaN comes out
        // clean, including with k > KC (only the first k block applies β)
        let (m, n, k) = (MR + 3, NR + 2, KC + 17);
        let a = gen::uniform(m, k, 8);
        let b = gen::uniform(k, n, 9);
        let mut c = DenseMatrix::from_fn(m, n, |_, _| f64::NAN);
        let ld = c.ld();
        dgemm(
            m,
            n,
            k,
            1.0,
            a.as_slice(),
            a.ld(),
            b.as_slice(),
            b.ld(),
            0.0,
            c.as_mut_slice(),
            ld,
        );
        let want = ops::matmul(&a, &b);
        assert!(c.approx_eq(&want, 1e-10));
    }

    #[test]
    fn packed_scratch_is_reused_without_allocation() {
        let b = 96;
        let mut scratch = GemmScratch::sized_for(b, b, b);
        let pa = scratch.a_pack.as_ptr();
        let x = gen::uniform(b, b, 10);
        let y = gen::uniform(b, b, 11);
        let mut c = DenseMatrix::zeros(b, b);
        let ld = c.ld();
        for (m, n, k) in [(b, b, b), (17, 5, 29), (b, 1, b)] {
            dgemm_packed(
                m,
                n,
                k,
                -1.0,
                x.as_slice(),
                x.ld(),
                y.as_slice(),
                y.ld(),
                1.0,
                c.as_mut_slice(),
                ld,
                &mut scratch,
            );
        }
        assert_eq!(scratch.a_pack.as_ptr(), pa, "arena must not reallocate");
    }

    #[test]
    fn alpha_beta_combinations() {
        let a = gen::uniform(8, 6, 10);
        let b = gen::uniform(6, 5, 11);
        let c = gen::uniform(8, 5, 12);
        // beta = 0 overwrites C entirely (even NaN-free from garbage C)
        let got = dgemm_dense(2.0, &a, &b, 0.0, &c);
        let want = ops::scale(2.0, &ops::matmul(&a, &b));
        assert!(got.approx_eq(&want, 1e-12));
        // alpha = 0, beta = 2 just scales C
        let got = dgemm_dense(0.0, &a, &b, 2.0, &c);
        assert!(got.approx_eq(&ops::scale(2.0, &c), 1e-12));
        // alpha = -1, beta = 1 is the update kernel of task S
        let got = dgemm_dense(-1.0, &a, &b, 1.0, &c);
        let want = ops::sub(&c, &ops::matmul(&a, &b));
        assert!(got.approx_eq(&want, 1e-12));
    }

    #[test]
    fn submatrix_with_leading_dimension() {
        // Multiply 3x3 blocks living inside 10x10 parents.
        let pa = gen::uniform(10, 10, 20);
        let pb = gen::uniform(10, 10, 21);
        let mut pc = gen::uniform(10, 10, 22);
        let (r, c, sz) = (2, 4, 3);
        let a = pa.submatrix(r, c, sz, sz);
        let b = pb.submatrix(r, c, sz, sz);
        let c0 = pc.submatrix(r, c, sz, sz);
        let off = c * 10 + r;
        // run on the parent slices with ld = 10
        let (pa_s, pb_s) = (pa.as_slice(), pb.as_slice());
        let pc_s = pc.as_mut_slice();
        dgemm(
            sz,
            sz,
            sz,
            1.0,
            &pa_s[off..],
            10,
            &pb_s[off..],
            10,
            1.0,
            &mut pc_s[off..],
            10,
        );
        let want = ops::add(&ops::matmul(&a, &b), &c0);
        let got = pc.submatrix(r, c, sz, sz);
        assert!(got.approx_eq(&want, 1e-12));
        // elements outside the target block untouched
        assert_eq!(pc.get(0, 0), gen::uniform(10, 10, 22).get(0, 0));
    }

    #[test]
    fn k_zero_only_scales() {
        let mut c = gen::uniform(4, 4, 30);
        let orig = c.clone();
        let (rows, ld) = (c.rows(), c.ld());
        dgemm(
            rows,
            rows,
            0,
            1.0,
            &[],
            4,
            &[],
            4,
            0.5,
            c.as_mut_slice(),
            ld,
        );
        assert!(c.approx_eq(&ops::scale(0.5, &orig), 1e-14));
    }

    #[test]
    fn empty_dims_are_noops() {
        let mut c: Vec<f64> = vec![];
        dgemm(0, 0, 5, 1.0, &[1.0; 5], 1, &[1.0; 5], 5, 1.0, &mut c, 1);
    }

    #[test]
    fn raw_variant_matches_safe() {
        let a = gen::uniform(6, 4, 40);
        let b = gen::uniform(4, 5, 41);
        let c = gen::uniform(6, 5, 42);
        let mut c1 = c.clone();
        let mut c2 = c.clone();
        dgemm(
            6,
            5,
            4,
            -1.0,
            a.as_slice(),
            6,
            b.as_slice(),
            4,
            1.0,
            c1.as_mut_slice(),
            6,
        );
        unsafe {
            dgemm_raw(
                6,
                5,
                4,
                -1.0,
                a.as_slice().as_ptr(),
                6,
                b.as_slice().as_ptr(),
                4,
                1.0,
                c2.as_mut_slice().as_mut_ptr(),
                6,
            );
        }
        assert!(c1.approx_eq(&c2, 0.0));
    }

    #[test]
    #[should_panic(expected = "leading dimension")]
    fn rejects_bad_ld() {
        let mut c = vec![0.0; 16];
        dgemm(4, 4, 4, 1.0, &[0.0; 16], 3, &[0.0; 16], 4, 0.0, &mut c, 4);
    }

    #[test]
    fn nt_matches_explicit_transpose() {
        // C ← α·A·Bᵀ + β·C must match dgemm against a transposed copy,
        // across register-tile edges and the KC boundary
        for (m, n, k, seed) in [
            (5, 7, 3, 1),
            (MR - 1, NR - 1, 7, 2),
            (MR + 1, NR + 1, KC, 3),
            (3 * MR + 5, 2 * NR + 3, KC + 9, 4),
            (1, 9, 4, 5),
            (MC + 3, NR, 33, 6),
        ] {
            let a = gen::uniform(m, k, seed);
            let b = gen::uniform(n, k, seed + 10); // stored n×k
            let bt = DenseMatrix::from_fn(k, n, |i, j| b.get(j, i));
            let c = gen::uniform(m, n, seed + 20);
            for (alpha, beta) in [(1.0, 1.0), (-1.0, 1.0), (2.0, 0.0)] {
                let mut got = c.clone();
                let ld = got.ld();
                dgemm_nt(
                    m,
                    n,
                    k,
                    alpha,
                    a.as_slice(),
                    a.ld(),
                    b.as_slice(),
                    b.ld(),
                    beta,
                    got.as_mut_slice(),
                    ld,
                );
                let want = dgemm_dense(alpha, &a, &bt, beta, &c);
                let tol = 1e-11 * (k as f64).max(1.0);
                assert!(
                    got.approx_eq(&want, tol),
                    "shape ({m},{n},{k}) alpha {alpha} beta {beta}"
                );
            }
        }
    }

    #[test]
    fn nt_raw_variant_matches_safe() {
        let (m, n, k) = (6, 5, 4);
        let a = gen::uniform(m, k, 60);
        let b = gen::uniform(n, k, 61);
        let c = gen::uniform(m, n, 62);
        let mut c1 = c.clone();
        let mut c2 = c.clone();
        let ld = c.ld();
        dgemm_nt(
            m,
            n,
            k,
            -1.0,
            a.as_slice(),
            a.ld(),
            b.as_slice(),
            b.ld(),
            1.0,
            c1.as_mut_slice(),
            ld,
        );
        let mut s = GemmScratch::new();
        unsafe {
            dgemm_nt_raw_packed(
                m,
                n,
                k,
                -1.0,
                a.as_slice().as_ptr(),
                a.ld(),
                b.as_slice().as_ptr(),
                b.ld(),
                1.0,
                c2.as_mut_slice().as_mut_ptr(),
                ld,
                &mut s,
            );
        }
        assert!(c1.approx_eq(&c2, 0.0));
    }

    #[test]
    #[should_panic(expected = "ldb too small")]
    fn nt_rejects_bad_ldb() {
        // for the NT product B is stored n×k, so ldb must cover n
        let mut c = vec![0.0; 16];
        dgemm_nt(4, 4, 4, 1.0, &[0.0; 16], 4, &[0.0; 16], 3, 0.0, &mut c, 4);
    }

    #[test]
    fn large_k_blocking_path() {
        // k > KC exercises the blocked loop
        let a = gen::uniform(7, 300, 50);
        let b = gen::uniform(300, 6, 51);
        let c = DenseMatrix::zeros(7, 6);
        let got = dgemm_dense(1.0, &a, &b, 0.0, &c);
        let want = ops::matmul(&a, &b);
        assert!(got.approx_eq(&want, 1e-10));
    }
}
