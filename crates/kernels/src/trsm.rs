//! Triangular solves — the kernels behind tasks **L** and **U**.
//!
//! * task U computes `U_{K,J} = L_{KK}^{-1} · A_{K,J}` →
//!   [`dtrsm_left_lower_unit`];
//! * task L computes `L_{I,K} = A_{I,K} · U_{KK}^{-1}` →
//!   [`dtrsm_right_upper`].
//!
//! Both are blocked: an unblocked substitution on each `TRSM_NB`-wide
//! diagonal block, then one rank-`TRSM_NB` [`crate::gemm`] update of the
//! remainder — so asymptotically all TRSM flops run through the packed
//! register-tiled GEMM. The unblocked solvers are exported for parity
//! tests and tiny blocks.

use crate::gemm::{dgemm_nt_raw_packed, dgemm_raw_packed};
use crate::pack::{with_thread_scratch, GemmScratch};
use crate::small::daxpy;

/// Diagonal-block width of the blocked triangular solves: below this the
/// substitution runs unblocked, above it the trailing work is GEMM.
pub const TRSM_NB: usize = 32;

/// Solve `L · X = B` in place (`B ← L⁻¹·B`) where `L` is `m×m` **unit**
/// lower triangular (diagonal implicitly 1, strictly-upper part ignored)
/// and `B` is `m×n`. Column-major with leading dimensions `ldl`, `ldb`.
/// Forward substitution only on [`TRSM_NB`]-wide diagonal blocks; the
/// rest is packed GEMM drawing on `scratch`.
pub fn dtrsm_left_lower_unit_packed(
    m: usize,
    n: usize,
    l: &[f64],
    ldl: usize,
    b: &mut [f64],
    ldb: usize,
    scratch: &mut GemmScratch,
) {
    if m == 0 || n == 0 {
        return;
    }
    assert!(ldl >= m && ldb >= m, "leading dimension too small");
    assert!(l.len() >= (m - 1) * ldl + m, "l slice too short");
    assert!(b.len() >= (n - 1) * ldb + m, "b slice too short");
    // SAFETY: spans validated above; l and b are distinct borrows.
    unsafe { trsm_ll_core(m, n, l.as_ptr(), ldl, b.as_mut_ptr(), ldb, scratch) }
}

/// [`dtrsm_left_lower_unit_packed`] with the per-thread scratch arena.
pub fn dtrsm_left_lower_unit(m: usize, n: usize, l: &[f64], ldl: usize, b: &mut [f64], ldb: usize) {
    with_thread_scratch(|s| dtrsm_left_lower_unit_packed(m, n, l, ldl, b, ldb, s));
}

/// Unblocked forward substitution — the reference the blocked solve is
/// tested against, and its diagonal-block base case.
pub fn dtrsm_left_lower_unit_unblocked(
    m: usize,
    n: usize,
    l: &[f64],
    ldl: usize,
    b: &mut [f64],
    ldb: usize,
) {
    if m == 0 || n == 0 {
        return;
    }
    assert!(ldl >= m && ldb >= m, "leading dimension too small");
    assert!(l.len() >= (m - 1) * ldl + m, "l slice too short");
    assert!(b.len() >= (n - 1) * ldb + m, "b slice too short");
    // SAFETY: spans validated above; l and b are distinct borrows.
    unsafe { ll_unblocked_core(m, n, l.as_ptr(), ldl, b.as_mut_ptr(), ldb) }
}

/// Unblocked forward substitution on raw pointers. Only forms slices
/// over single column segments of the addressed blocks, never over a
/// whole `(cols−1)·ld + rows` span — callers in the parallel executor
/// hand in tiles that interleave with concurrently-written tiles of the
/// same backing buffer (column-major and BCL layouts), and a slice
/// spanning another worker's live writes would be undefined behavior
/// even if never read.
///
/// # Safety
///
/// Every column segment addressed (`m` elements at `b + j·ldb`, the
/// subdiagonal runs of `l`) must be valid, `b`'s segments must not
/// overlap `l`'s, and the caller must have exclusive access to them.
unsafe fn ll_unblocked_core(
    m: usize,
    n: usize,
    l: *const f64,
    ldl: usize,
    b: *mut f64,
    ldb: usize,
) {
    for j in 0..n {
        let col = std::slice::from_raw_parts_mut(b.add(j * ldb), m);
        // forward substitution; the update of rows k+1.. is an AXPY with
        // the contiguous subcolumn of L below its diagonal.
        for k in 0..m {
            let xk = col[k];
            if xk == 0.0 {
                continue;
            }
            let (_, tail) = col.split_at_mut(k + 1);
            let l_tail = std::slice::from_raw_parts(l.add(k * ldl + k + 1), m - k - 1);
            daxpy(-xk, l_tail, tail);
        }
    }
}

/// Blocked forward substitution on raw pointers (spans pre-validated).
///
/// # Safety
///
/// `l` and `b` must be valid for their `m×m` / `m×n` spans, be
/// element-disjoint, and the caller must have exclusive access to `b`.
unsafe fn trsm_ll_core(
    m: usize,
    n: usize,
    l: *const f64,
    ldl: usize,
    b: *mut f64,
    ldb: usize,
    scratch: &mut GemmScratch,
) {
    let mut k0 = 0;
    while k0 < m {
        let kb = TRSM_NB.min(m - k0);
        ll_unblocked_core(kb, n, l.add(k0 * ldl + k0), ldl, b.add(k0), ldb);
        // B[k0+kb.., :] −= L[k0+kb.., k0..k0+kb] · X[k0..k0+kb, :]
        // (reads rows k0..k0+kb of B, writes rows below: element-disjoint)
        if k0 + kb < m {
            dgemm_raw_packed(
                m - k0 - kb,
                n,
                kb,
                -1.0,
                l.add(k0 * ldl + k0 + kb),
                ldl,
                b.add(k0) as *const f64,
                ldb,
                1.0,
                b.add(k0 + kb),
                ldb,
                scratch,
            );
        }
        k0 += kb;
    }
}

/// Solve `X · U = B` in place (`B ← B·U⁻¹`) where `U` is `n×n` upper
/// triangular with a **non-unit** diagonal and `B` is `m×n`. Column-major
/// with leading dimensions `ldu`, `ldb`. Blocked like
/// [`dtrsm_left_lower_unit_packed`]: unblocked solve per diagonal block,
/// packed GEMM for the trailing columns.
///
/// A zero diagonal entry of `U` produces `inf`/`NaN` in the result, like
/// the BLAS; singularity is detected by the factorization drivers, not
/// here.
pub fn dtrsm_right_upper_packed(
    m: usize,
    n: usize,
    u: &[f64],
    ldu: usize,
    b: &mut [f64],
    ldb: usize,
    scratch: &mut GemmScratch,
) {
    if m == 0 || n == 0 {
        return;
    }
    assert!(ldu >= n && ldb >= m, "leading dimension too small");
    assert!(u.len() >= (n - 1) * ldu + n, "u slice too short");
    assert!(b.len() >= (n - 1) * ldb + m, "b slice too short");
    // SAFETY: spans validated above; u and b are distinct borrows.
    unsafe { trsm_ru_core(m, n, u.as_ptr(), ldu, b.as_mut_ptr(), ldb, scratch) }
}

/// [`dtrsm_right_upper_packed`] with the per-thread scratch arena.
pub fn dtrsm_right_upper(m: usize, n: usize, u: &[f64], ldu: usize, b: &mut [f64], ldb: usize) {
    with_thread_scratch(|s| dtrsm_right_upper_packed(m, n, u, ldu, b, ldb, s));
}

/// Unblocked column-by-column substitution — the reference the blocked
/// solve is tested against, and its diagonal-block base case.
pub fn dtrsm_right_upper_unblocked(
    m: usize,
    n: usize,
    u: &[f64],
    ldu: usize,
    b: &mut [f64],
    ldb: usize,
) {
    if m == 0 || n == 0 {
        return;
    }
    assert!(ldu >= n && ldb >= m, "leading dimension too small");
    assert!(u.len() >= (n - 1) * ldu + n, "u slice too short");
    assert!(b.len() >= (n - 1) * ldb + m, "b slice too short");
    // SAFETY: spans validated above; u and b are distinct borrows.
    unsafe { ru_unblocked_core(m, n, u.as_ptr(), ldu, b.as_mut_ptr(), ldb) }
}

/// Unblocked right-upper substitution on raw pointers. Like
/// [`ll_unblocked_core`], only ever forms slices over single column
/// segments (the read column `k` and written column `j` are distinct,
/// `k < j`), so interleaved tiles written by other workers are never
/// covered by a live slice.
///
/// # Safety
///
/// Every column segment addressed (`m` elements at `b + j·ldb`) and
/// every `u` entry read must be valid, `b`'s segments must not overlap
/// `u`'s, and the caller must have exclusive access to them.
unsafe fn ru_unblocked_core(
    m: usize,
    n: usize,
    u: *const f64,
    ldu: usize,
    b: *mut f64,
    ldb: usize,
) {
    for j in 0..n {
        // X[:,j] = (B[:,j] − Σ_{k<j} X[:,k]·u[k,j]) / u[j,j]
        for k in 0..j {
            let ukj = *u.add(k + j * ldu);
            if ukj == 0.0 {
                continue;
            }
            // columns k and j are disjoint segments of b
            let x_k = std::slice::from_raw_parts(b.add(k * ldb), m);
            let b_j = std::slice::from_raw_parts_mut(b.add(j * ldb), m);
            daxpy(-ukj, x_k, b_j);
        }
        let d = 1.0 / *u.add(j + j * ldu);
        for v in std::slice::from_raw_parts_mut(b.add(j * ldb), m) {
            *v *= d;
        }
    }
}

/// Blocked right-upper solve on raw pointers (spans pre-validated).
///
/// # Safety
///
/// `u` and `b` must be valid for their `n×n` / `m×n` spans, be
/// element-disjoint, and the caller must have exclusive access to `b`.
unsafe fn trsm_ru_core(
    m: usize,
    n: usize,
    u: *const f64,
    ldu: usize,
    b: *mut f64,
    ldb: usize,
    scratch: &mut GemmScratch,
) {
    let mut j0 = 0;
    while j0 < n {
        let jb = TRSM_NB.min(n - j0);
        ru_unblocked_core(m, jb, u.add(j0 * ldu + j0), ldu, b.add(j0 * ldb), ldb);
        // B[:, j0+jb..] −= X[:, j0..j0+jb] · U[j0..j0+jb, j0+jb..]
        // (reads and writes disjoint column ranges of B)
        if j0 + jb < n {
            dgemm_raw_packed(
                m,
                n - j0 - jb,
                jb,
                -1.0,
                b.add(j0 * ldb) as *const f64,
                ldb,
                u.add((j0 + jb) * ldu + j0),
                ldu,
                1.0,
                b.add((j0 + jb) * ldb),
                ldb,
                scratch,
            );
        }
        j0 += jb;
    }
}

/// Solve `X · Lᵀ = B` in place (`B ← B·L⁻ᵀ`) where `L` is `n×n` lower
/// triangular with a **non-unit** diagonal and `B` is `m×n`. Column-major
/// with leading dimensions `ldl`, `ldb`. This is the Cholesky task **L**
/// kernel (`L_ik = A_ik·L_kk⁻ᵀ`). Blocked like the other solves:
/// unblocked substitution per [`TRSM_NB`]-wide diagonal block, then one
/// packed NT GEMM ([`crate::gemm::dgemm_nt_packed`]) for the trailing
/// columns.
///
/// A zero diagonal entry of `L` produces `inf`/`NaN`, like the BLAS;
/// non-positive-definiteness is detected by the factorization drivers.
pub fn dtrsm_right_lower_trans_packed(
    m: usize,
    n: usize,
    l: &[f64],
    ldl: usize,
    b: &mut [f64],
    ldb: usize,
    scratch: &mut GemmScratch,
) {
    if m == 0 || n == 0 {
        return;
    }
    assert!(ldl >= n && ldb >= m, "leading dimension too small");
    assert!(l.len() >= (n - 1) * ldl + n, "l slice too short");
    assert!(b.len() >= (n - 1) * ldb + m, "b slice too short");
    // SAFETY: spans validated above; l and b are distinct borrows.
    unsafe { trsm_rlt_core(m, n, l.as_ptr(), ldl, b.as_mut_ptr(), ldb, scratch) }
}

/// [`dtrsm_right_lower_trans_packed`] with the per-thread scratch arena.
pub fn dtrsm_right_lower_trans(
    m: usize,
    n: usize,
    l: &[f64],
    ldl: usize,
    b: &mut [f64],
    ldb: usize,
) {
    with_thread_scratch(|s| dtrsm_right_lower_trans_packed(m, n, l, ldl, b, ldb, s));
}

/// Unblocked column-by-column substitution — the reference the blocked
/// solve is tested against, and its diagonal-block base case.
pub fn dtrsm_right_lower_trans_unblocked(
    m: usize,
    n: usize,
    l: &[f64],
    ldl: usize,
    b: &mut [f64],
    ldb: usize,
) {
    if m == 0 || n == 0 {
        return;
    }
    assert!(ldl >= n && ldb >= m, "leading dimension too small");
    assert!(l.len() >= (n - 1) * ldl + n, "l slice too short");
    assert!(b.len() >= (n - 1) * ldb + m, "b slice too short");
    // SAFETY: spans validated above; l and b are distinct borrows.
    unsafe { rlt_unblocked_core(m, n, l.as_ptr(), ldl, b.as_mut_ptr(), ldb) }
}

/// Unblocked right-lower-transpose substitution on raw pointers. `Lᵀ` is
/// upper triangular with `(Lᵀ)[k,j] = L[j,k]`, so this is
/// [`ru_unblocked_core`] reading the triangle transposed. Like the other
/// unblocked cores, only ever forms slices over single column segments
/// of `b`, so interleaved tiles written by other workers are never
/// covered by a live slice.
///
/// # Safety
///
/// Every column segment addressed (`m` elements at `b + j·ldb`) and
/// every `l` entry read must be valid, `b`'s segments must not overlap
/// `l`'s, and the caller must have exclusive access to them.
unsafe fn rlt_unblocked_core(
    m: usize,
    n: usize,
    l: *const f64,
    ldl: usize,
    b: *mut f64,
    ldb: usize,
) {
    for j in 0..n {
        // X[:,j] = (B[:,j] − Σ_{k<j} X[:,k]·L[j,k]) / L[j,j]
        for k in 0..j {
            let ljk = *l.add(j + k * ldl);
            if ljk == 0.0 {
                continue;
            }
            // columns k and j are disjoint segments of b
            let x_k = std::slice::from_raw_parts(b.add(k * ldb), m);
            let b_j = std::slice::from_raw_parts_mut(b.add(j * ldb), m);
            daxpy(-ljk, x_k, b_j);
        }
        let d = 1.0 / *l.add(j + j * ldl);
        for v in std::slice::from_raw_parts_mut(b.add(j * ldb), m) {
            *v *= d;
        }
    }
}

/// Blocked right-lower-transpose solve on raw pointers (spans
/// pre-validated).
///
/// # Safety
///
/// `l` and `b` must be valid for their `n×n` / `m×n` spans, be
/// element-disjoint, and the caller must have exclusive access to `b`.
unsafe fn trsm_rlt_core(
    m: usize,
    n: usize,
    l: *const f64,
    ldl: usize,
    b: *mut f64,
    ldb: usize,
    scratch: &mut GemmScratch,
) {
    let mut j0 = 0;
    while j0 < n {
        let jb = TRSM_NB.min(n - j0);
        rlt_unblocked_core(m, jb, l.add(j0 * ldl + j0), ldl, b.add(j0 * ldb), ldb);
        // B[:, j0+jb..] −= X[:, j0..j0+jb] · L[j0+jb.., j0..j0+jb]ᵀ
        // (reads and writes disjoint column ranges of B)
        if j0 + jb < n {
            dgemm_nt_raw_packed(
                m,
                n - j0 - jb,
                jb,
                -1.0,
                b.add(j0 * ldb) as *const f64,
                ldb,
                l.add(j0 * ldl + j0 + jb),
                ldl,
                1.0,
                b.add((j0 + jb) * ldb),
                ldb,
                scratch,
            );
        }
        j0 += jb;
    }
}

/// Raw-pointer variant of [`dtrsm_right_lower_trans_packed`].
///
/// # Safety
/// Blocks must be valid for their spans, `b` must not overlap `l`, and the
/// caller must have exclusive access to `b`.
pub unsafe fn dtrsm_right_lower_trans_raw_packed(
    m: usize,
    n: usize,
    l: *const f64,
    ldl: usize,
    b: *mut f64,
    ldb: usize,
    scratch: &mut GemmScratch,
) {
    if m == 0 || n == 0 {
        return;
    }
    trsm_rlt_core(m, n, l, ldl, b, ldb, scratch);
}

/// Raw-pointer variant of [`dtrsm_left_lower_unit_packed`].
///
/// # Safety
/// Blocks must be valid for their spans, `b` must not overlap `l`, and the
/// caller must have exclusive access to `b`.
pub unsafe fn dtrsm_left_lower_unit_raw_packed(
    m: usize,
    n: usize,
    l: *const f64,
    ldl: usize,
    b: *mut f64,
    ldb: usize,
    scratch: &mut GemmScratch,
) {
    if m == 0 || n == 0 {
        return;
    }
    trsm_ll_core(m, n, l, ldl, b, ldb, scratch);
}

/// Raw-pointer variant of [`dtrsm_left_lower_unit`].
///
/// # Safety
/// Same contract as [`dtrsm_left_lower_unit_raw_packed`].
pub unsafe fn dtrsm_left_lower_unit_raw(
    m: usize,
    n: usize,
    l: *const f64,
    ldl: usize,
    b: *mut f64,
    ldb: usize,
) {
    with_thread_scratch(|s| dtrsm_left_lower_unit_raw_packed(m, n, l, ldl, b, ldb, s));
}

/// Raw-pointer variant of [`dtrsm_right_upper_packed`].
///
/// # Safety
/// Blocks must be valid for their spans, `b` must not overlap `u`, and the
/// caller must have exclusive access to `b`.
pub unsafe fn dtrsm_right_upper_raw_packed(
    m: usize,
    n: usize,
    u: *const f64,
    ldu: usize,
    b: *mut f64,
    ldb: usize,
    scratch: &mut GemmScratch,
) {
    if m == 0 || n == 0 {
        return;
    }
    trsm_ru_core(m, n, u, ldu, b, ldb, scratch);
}

/// Raw-pointer variant of [`dtrsm_right_upper`].
///
/// # Safety
/// Same contract as [`dtrsm_right_upper_raw_packed`].
pub unsafe fn dtrsm_right_upper_raw(
    m: usize,
    n: usize,
    u: *const f64,
    ldu: usize,
    b: *mut f64,
    ldb: usize,
) {
    with_thread_scratch(|s| dtrsm_right_upper_raw_packed(m, n, u, ldu, b, ldb, s));
}

#[cfg(test)]
mod tests {
    use super::*;
    use calu_matrix::{gen, ops, DenseMatrix};

    /// build a well-conditioned unit lower triangular matrix
    fn unit_lower(n: usize, seed: u64) -> DenseMatrix {
        let r = gen::uniform(n, n, seed);
        DenseMatrix::from_fn(n, n, |i, j| {
            if i == j {
                1.0
            } else if i > j {
                0.5 * r.get(i, j)
            } else {
                0.0
            }
        })
    }

    /// build a well-conditioned upper triangular matrix
    fn upper(n: usize, seed: u64) -> DenseMatrix {
        let r = gen::uniform(n, n, seed);
        DenseMatrix::from_fn(n, n, |i, j| {
            if i == j {
                2.0 + r.get(i, j).abs()
            } else if i < j {
                r.get(i, j)
            } else {
                0.0
            }
        })
    }

    #[test]
    fn left_solve_recovers_rhs() {
        for (m, n) in [(1, 1), (4, 7), (16, 3), (23, 23), (2 * TRSM_NB + 5, 9)] {
            let l = unit_lower(m, 7);
            let x_true = gen::uniform(m, n, 8);
            let b = ops::matmul(&l, &x_true);
            let mut x = b.clone();
            let ld = x.ld();
            dtrsm_left_lower_unit(m, n, l.as_slice(), l.ld(), x.as_mut_slice(), ld);
            assert!(x.approx_eq(&x_true, 1e-9), "shape ({m},{n})");
        }
    }

    #[test]
    fn left_solve_ignores_upper_garbage() {
        // strictly-upper part of L must be ignored, including by the
        // blocked path's GEMM update (strictly-lower blocks only)
        let m = TRSM_NB + 5;
        let mut l = unit_lower(m, 1);
        for i in 0..m {
            for j in (i + 1)..m {
                l.set(i, j, f64::NAN);
            }
        }
        let x_true = gen::uniform(m, 2, 2);
        let clean = unit_lower(m, 1);
        let b = ops::matmul(&clean, &x_true);
        let mut x = b.clone();
        let ld = x.ld();
        dtrsm_left_lower_unit(m, 2, l.as_slice(), l.ld(), x.as_mut_slice(), ld);
        assert!(x.approx_eq(&x_true, 1e-10));
    }

    #[test]
    fn right_solve_recovers_lhs() {
        for (m, n) in [(1, 1), (7, 4), (3, 16), (23, 23), (9, 2 * TRSM_NB + 5)] {
            let u = upper(n, 17);
            let x_true = gen::uniform(m, n, 18);
            let b = ops::matmul(&x_true, &u);
            let mut x = b.clone();
            let ld = x.ld();
            dtrsm_right_upper(m, n, u.as_slice(), u.ld(), x.as_mut_slice(), ld);
            assert!(x.approx_eq(&x_true, 1e-9), "shape ({m},{n})");
        }
    }

    #[test]
    fn right_solve_ignores_lower_garbage() {
        let n = TRSM_NB + 4;
        let mut u = upper(n, 3);
        for i in 0..n {
            for j in 0..i {
                u.set(i, j, f64::NAN);
            }
        }
        let clean = upper(n, 3);
        let x_true = gen::uniform(3, n, 4);
        let b = ops::matmul(&x_true, &clean);
        let mut x = b.clone();
        let ld = x.ld();
        dtrsm_right_upper(3, n, u.as_slice(), u.ld(), x.as_mut_slice(), ld);
        assert!(x.approx_eq(&x_true, 1e-10));
    }

    /// build a well-conditioned lower triangular matrix (non-unit diag)
    fn lower(n: usize, seed: u64) -> DenseMatrix {
        let r = gen::uniform(n, n, seed);
        DenseMatrix::from_fn(n, n, |i, j| {
            if i == j {
                2.0 + r.get(i, j).abs()
            } else if i > j {
                r.get(i, j)
            } else {
                0.0
            }
        })
    }

    #[test]
    fn right_lower_trans_recovers_lhs() {
        for (m, n) in [(1, 1), (7, 4), (3, 16), (23, 23), (9, 2 * TRSM_NB + 5)] {
            let l = lower(n, 27);
            let lt = DenseMatrix::from_fn(n, n, |i, j| l.get(j, i));
            let x_true = gen::uniform(m, n, 28);
            let b = ops::matmul(&x_true, &lt);
            let mut x = b.clone();
            let ld = x.ld();
            dtrsm_right_lower_trans(m, n, l.as_slice(), l.ld(), x.as_mut_slice(), ld);
            assert!(x.approx_eq(&x_true, 1e-9), "shape ({m},{n})");
        }
    }

    #[test]
    fn right_lower_trans_ignores_upper_garbage() {
        // the strictly-upper part of L must never be read, including by
        // the blocked path's NT GEMM (strictly-lower blocks only)
        let n = TRSM_NB + 4;
        let mut l = lower(n, 33);
        for i in 0..n {
            for j in (i + 1)..n {
                l.set(i, j, f64::NAN);
            }
        }
        let clean = lower(n, 33);
        let lt = DenseMatrix::from_fn(n, n, |i, j| clean.get(j, i));
        let x_true = gen::uniform(3, n, 34);
        let b = ops::matmul(&x_true, &lt);
        let mut x = b.clone();
        let ld = x.ld();
        dtrsm_right_lower_trans(3, n, l.as_slice(), l.ld(), x.as_mut_slice(), ld);
        assert!(x.approx_eq(&x_true, 1e-10));
    }

    #[test]
    fn right_lower_trans_blocked_matches_unblocked() {
        for n in [
            TRSM_NB - 1,
            TRSM_NB,
            TRSM_NB + 1,
            2 * TRSM_NB + 7,
            3 * TRSM_NB - 1,
        ] {
            let m = 11;
            let l = lower(n, 35);
            let b0 = gen::uniform(m, n, 36);
            let mut blocked = b0.clone();
            let mut unblocked = b0.clone();
            let ld = b0.ld();
            dtrsm_right_lower_trans(m, n, l.as_slice(), l.ld(), blocked.as_mut_slice(), ld);
            dtrsm_right_lower_trans_unblocked(
                m,
                n,
                l.as_slice(),
                l.ld(),
                unblocked.as_mut_slice(),
                ld,
            );
            assert!(blocked.approx_eq(&unblocked, 1e-11), "n={n}");
        }
    }

    #[test]
    fn right_lower_trans_raw_matches_safe() {
        let n = TRSM_NB + 9; // past the block boundary so the NT GEMM runs
        let l = lower(n, 37);
        let b0 = gen::uniform(n, n, 38);
        let mut b1 = b0.clone();
        let mut b2 = b0.clone();
        dtrsm_right_lower_trans(n, n, l.as_slice(), n, b1.as_mut_slice(), n);
        let mut s = GemmScratch::new();
        unsafe {
            dtrsm_right_lower_trans_raw_packed(
                n,
                n,
                l.as_slice().as_ptr(),
                n,
                b2.as_mut_slice().as_mut_ptr(),
                n,
                &mut s,
            )
        };
        assert!(b1.approx_eq(&b2, 0.0));
    }

    #[test]
    fn blocked_matches_unblocked_on_awkward_sizes() {
        // non-multiples of TRSM_NB on both sides of the boundary
        for m in [
            TRSM_NB - 1,
            TRSM_NB,
            TRSM_NB + 1,
            2 * TRSM_NB + 7,
            3 * TRSM_NB - 1,
        ] {
            let n = 11;
            let l = unit_lower(m, 40);
            let b0 = gen::uniform(m, n, 41);
            let mut blocked = b0.clone();
            let mut unblocked = b0.clone();
            let ld = b0.ld();
            dtrsm_left_lower_unit(m, n, l.as_slice(), l.ld(), blocked.as_mut_slice(), ld);
            dtrsm_left_lower_unit_unblocked(
                m,
                n,
                l.as_slice(),
                l.ld(),
                unblocked.as_mut_slice(),
                ld,
            );
            assert!(blocked.approx_eq(&unblocked, 1e-11), "left m={m}");

            let u = upper(m, 42);
            let b0 = gen::uniform(n, m, 43);
            let mut blocked = b0.clone();
            let mut unblocked = b0.clone();
            let ld = b0.ld();
            dtrsm_right_upper(n, m, u.as_slice(), u.ld(), blocked.as_mut_slice(), ld);
            dtrsm_right_upper_unblocked(n, m, u.as_slice(), u.ld(), unblocked.as_mut_slice(), ld);
            assert!(blocked.approx_eq(&unblocked, 1e-11), "right n={m}");
        }
    }

    #[test]
    fn right_solve_singular_diagonal_propagates_nonfinite() {
        // a zero pivot on U's diagonal must poison the singular column
        // (division by zero → inf/NaN) and every column to its right
        // that draws on it, while the columns left of it stay clean —
        // same contract as the BLAS, blocked or not
        let n = TRSM_NB + 6;
        let sing = 2; // inside the first diagonal block
        let mut u = upper(n, 50);
        u.set(sing, sing, 0.0);
        let b0 = gen::uniform(4, n, 51);
        for blocked in [true, false] {
            let mut x = b0.clone();
            let ld = x.ld();
            if blocked {
                dtrsm_right_upper(4, n, u.as_slice(), u.ld(), x.as_mut_slice(), ld);
            } else {
                dtrsm_right_upper_unblocked(4, n, u.as_slice(), u.ld(), x.as_mut_slice(), ld);
            }
            for j in 0..sing {
                for i in 0..4 {
                    assert!(x.get(i, j).is_finite(), "col {j} before the zero pivot");
                }
            }
            assert!(
                (0..4).any(|i| !x.get(i, sing).is_finite()),
                "singular column must be non-finite (blocked={blocked})"
            );
        }
    }

    #[test]
    fn nan_rhs_propagates_through_blocked_left_solve() {
        // NaN in B must survive (not be silently zeroed) through the
        // blocked path's GEMM update into later rows
        let m = TRSM_NB + 8;
        let l = unit_lower(m, 52);
        let mut b = gen::uniform(m, 1, 53);
        b.set(0, 0, f64::NAN);
        let ld = b.ld();
        dtrsm_left_lower_unit(m, 1, l.as_slice(), l.ld(), b.as_mut_slice(), ld);
        assert!(b.get(0, 0).is_nan());
        assert!(
            b.get(m - 1, 0).is_nan(),
            "NaN must reach rows past the block boundary"
        );
    }

    #[test]
    fn works_on_submatrices_with_ld() {
        let m = 4;
        let parent_l = {
            let mut p = DenseMatrix::zeros(10, 10);
            p.set_submatrix(3, 3, &unit_lower(m, 5));
            p
        };
        let x_true = gen::uniform(m, 2, 6);
        let b = ops::matmul(&parent_l.submatrix(3, 3, m, m), &x_true);
        let mut parent_b = DenseMatrix::zeros(10, 6);
        parent_b.set_submatrix(2, 1, &b);
        let l_off = 3 * 10 + 3;
        let b_off = 10 + 2;
        dtrsm_left_lower_unit(
            m,
            2,
            &parent_l.as_slice()[l_off..],
            10,
            &mut parent_b.as_mut_slice()[b_off..],
            10,
        );
        assert!(parent_b.submatrix(2, 1, m, 2).approx_eq(&x_true, 1e-12));
        assert_eq!(parent_b.get(0, 0), 0.0);
    }

    #[test]
    fn raw_variants_match_safe() {
        let n = TRSM_NB + 9; // past the block boundary so GEMM runs
        let l = unit_lower(n, 9);
        let u = upper(n, 10);
        let b0 = gen::uniform(n, n, 11);
        let mut b1 = b0.clone();
        let mut b2 = b0.clone();
        dtrsm_left_lower_unit(n, n, l.as_slice(), n, b1.as_mut_slice(), n);
        unsafe {
            dtrsm_left_lower_unit_raw(
                n,
                n,
                l.as_slice().as_ptr(),
                n,
                b2.as_mut_slice().as_mut_ptr(),
                n,
            )
        };
        assert!(b1.approx_eq(&b2, 0.0));
        let mut b1 = b0.clone();
        let mut b2 = b0.clone();
        dtrsm_right_upper(n, n, u.as_slice(), n, b1.as_mut_slice(), n);
        unsafe {
            dtrsm_right_upper_raw(
                n,
                n,
                u.as_slice().as_ptr(),
                n,
                b2.as_mut_slice().as_mut_ptr(),
                n,
            )
        };
        assert!(b1.approx_eq(&b2, 0.0));
    }

    #[test]
    fn empty_is_noop() {
        let mut b: Vec<f64> = vec![];
        dtrsm_left_lower_unit(0, 3, &[], 1, &mut b, 1);
        dtrsm_right_upper(3, 0, &[], 1, &mut b, 1);
        dtrsm_left_lower_unit_unblocked(0, 3, &[], 1, &mut b, 1);
        dtrsm_right_upper_unblocked(3, 0, &[], 1, &mut b, 1);
        let mut s = GemmScratch::new();
        dtrsm_left_lower_unit_packed(3, 0, &[], 1, &mut b, 1, &mut s);
        dtrsm_right_upper_packed(0, 3, &[], 1, &mut b, 1, &mut s);
    }
}
