//! Triangular solves — the kernels behind tasks **L** and **U**.
//!
//! * task U computes `U_{K,J} = L_{KK}^{-1} · A_{K,J}` →
//!   [`dtrsm_left_lower_unit`];
//! * task L computes `L_{I,K} = A_{I,K} · U_{KK}^{-1}` →
//!   [`dtrsm_right_upper`].

use crate::small::daxpy;

/// Solve `L · X = B` in place (`B ← L⁻¹·B`) where `L` is `m×m` **unit**
/// lower triangular (diagonal implicitly 1, strictly-upper part ignored)
/// and `B` is `m×n`. Column-major with leading dimensions `ldl`, `ldb`.
pub fn dtrsm_left_lower_unit(m: usize, n: usize, l: &[f64], ldl: usize, b: &mut [f64], ldb: usize) {
    if m == 0 || n == 0 {
        return;
    }
    assert!(ldl >= m && ldb >= m, "leading dimension too small");
    assert!(l.len() >= (m - 1) * ldl + m, "l slice too short");
    assert!(b.len() >= (n - 1) * ldb + m, "b slice too short");
    for j in 0..n {
        let col = &mut b[j * ldb..j * ldb + m];
        // forward substitution; the update of rows k+1.. is an AXPY with
        // the contiguous subcolumn of L below its diagonal.
        for k in 0..m {
            let xk = col[k];
            if xk == 0.0 {
                continue;
            }
            let (_, tail) = col.split_at_mut(k + 1);
            let l_tail = &l[k * ldl + k + 1..k * ldl + m];
            daxpy(-xk, l_tail, tail);
        }
    }
}

/// Solve `X · U = B` in place (`B ← B·U⁻¹`) where `U` is `n×n` upper
/// triangular with a **non-unit** diagonal and `B` is `m×n`. Column-major
/// with leading dimensions `ldu`, `ldb`.
///
/// A zero diagonal entry of `U` produces `inf`/`NaN` in the result, like
/// the BLAS; singularity is detected by the factorization drivers, not
/// here.
pub fn dtrsm_right_upper(m: usize, n: usize, u: &[f64], ldu: usize, b: &mut [f64], ldb: usize) {
    if m == 0 || n == 0 {
        return;
    }
    assert!(ldu >= n && ldb >= m, "leading dimension too small");
    assert!(u.len() >= (n - 1) * ldu + n, "u slice too short");
    assert!(b.len() >= (n - 1) * ldb + m, "b slice too short");
    for j in 0..n {
        // X[:,j] = (B[:,j] − Σ_{k<j} X[:,k]·u[k,j]) / u[j,j]
        for k in 0..j {
            let ukj = u[k + j * ldu];
            if ukj == 0.0 {
                continue;
            }
            // split the buffer so we can read column k while writing column j
            let (head, tail) = b.split_at_mut(j * ldb);
            let x_k = &head[k * ldb..k * ldb + m];
            let b_j = &mut tail[..m];
            daxpy(-ukj, x_k, b_j);
        }
        let d = 1.0 / u[j + j * ldu];
        for v in &mut b[j * ldb..j * ldb + m] {
            *v *= d;
        }
    }
}

/// Raw-pointer variant of [`dtrsm_left_lower_unit`].
///
/// # Safety
/// Blocks must be valid for their spans, `b` must not overlap `l`, and the
/// caller must have exclusive access to `b`.
pub unsafe fn dtrsm_left_lower_unit_raw(
    m: usize,
    n: usize,
    l: *const f64,
    ldl: usize,
    b: *mut f64,
    ldb: usize,
) {
    if m == 0 || n == 0 {
        return;
    }
    let l = std::slice::from_raw_parts(l, (m - 1) * ldl + m);
    let b = std::slice::from_raw_parts_mut(b, (n - 1) * ldb + m);
    dtrsm_left_lower_unit(m, n, l, ldl, b, ldb);
}

/// Raw-pointer variant of [`dtrsm_right_upper`].
///
/// # Safety
/// Blocks must be valid for their spans, `b` must not overlap `u`, and the
/// caller must have exclusive access to `b`.
pub unsafe fn dtrsm_right_upper_raw(
    m: usize,
    n: usize,
    u: *const f64,
    ldu: usize,
    b: *mut f64,
    ldb: usize,
) {
    if m == 0 || n == 0 {
        return;
    }
    let u = std::slice::from_raw_parts(u, (n - 1) * ldu + n);
    let b = std::slice::from_raw_parts_mut(b, (n - 1) * ldb + m);
    dtrsm_right_upper(m, n, u, ldu, b, ldb);
}

#[cfg(test)]
mod tests {
    use super::*;
    use calu_matrix::{gen, ops, DenseMatrix};

    /// build a well-conditioned unit lower triangular matrix
    fn unit_lower(n: usize, seed: u64) -> DenseMatrix {
        let r = gen::uniform(n, n, seed);
        DenseMatrix::from_fn(n, n, |i, j| {
            if i == j {
                1.0
            } else if i > j {
                0.5 * r.get(i, j)
            } else {
                0.0
            }
        })
    }

    /// build a well-conditioned upper triangular matrix
    fn upper(n: usize, seed: u64) -> DenseMatrix {
        let r = gen::uniform(n, n, seed);
        DenseMatrix::from_fn(n, n, |i, j| {
            if i == j {
                2.0 + r.get(i, j).abs()
            } else if i < j {
                r.get(i, j)
            } else {
                0.0
            }
        })
    }

    #[test]
    fn left_solve_recovers_rhs() {
        for (m, n) in [(1, 1), (4, 7), (16, 3), (23, 23)] {
            let l = unit_lower(m, 7);
            let x_true = gen::uniform(m, n, 8);
            let b = ops::matmul(&l, &x_true);
            let mut x = b.clone();
            let ld = x.ld();
            dtrsm_left_lower_unit(m, n, l.as_slice(), l.ld(), x.as_mut_slice(), ld);
            assert!(x.approx_eq(&x_true, 1e-10), "shape ({m},{n})");
        }
    }

    #[test]
    fn left_solve_ignores_upper_garbage() {
        // strictly-upper part of L must be ignored
        let mut l = unit_lower(5, 1);
        for i in 0..5 {
            for j in (i + 1)..5 {
                l.set(i, j, f64::NAN);
            }
        }
        let x_true = gen::uniform(5, 2, 2);
        let clean = unit_lower(5, 1);
        let b = ops::matmul(&clean, &x_true);
        let mut x = b.clone();
        let ld = x.ld();
        dtrsm_left_lower_unit(5, 2, l.as_slice(), l.ld(), x.as_mut_slice(), ld);
        assert!(x.approx_eq(&x_true, 1e-12));
    }

    #[test]
    fn right_solve_recovers_lhs() {
        for (m, n) in [(1, 1), (7, 4), (3, 16), (23, 23)] {
            let u = upper(n, 17);
            let x_true = gen::uniform(m, n, 18);
            let b = ops::matmul(&x_true, &u);
            let mut x = b.clone();
            let ld = x.ld();
            dtrsm_right_upper(m, n, u.as_slice(), u.ld(), x.as_mut_slice(), ld);
            assert!(x.approx_eq(&x_true, 1e-10), "shape ({m},{n})");
        }
    }

    #[test]
    fn right_solve_ignores_lower_garbage() {
        let mut u = upper(4, 3);
        for i in 0..4 {
            for j in 0..i {
                u.set(i, j, f64::NAN);
            }
        }
        let clean = upper(4, 3);
        let x_true = gen::uniform(3, 4, 4);
        let b = ops::matmul(&x_true, &clean);
        let mut x = b.clone();
        let ld = x.ld();
        dtrsm_right_upper(3, 4, u.as_slice(), u.ld(), x.as_mut_slice(), ld);
        assert!(x.approx_eq(&x_true, 1e-12));
    }

    #[test]
    fn works_on_submatrices_with_ld() {
        let m = 4;
        let parent_l = {
            let mut p = DenseMatrix::zeros(10, 10);
            p.set_submatrix(3, 3, &unit_lower(m, 5));
            p
        };
        let x_true = gen::uniform(m, 2, 6);
        let b = ops::matmul(&parent_l.submatrix(3, 3, m, m), &x_true);
        let mut parent_b = DenseMatrix::zeros(10, 6);
        parent_b.set_submatrix(2, 1, &b);
        let l_off = 3 * 10 + 3;
        let b_off = 10 + 2;
        dtrsm_left_lower_unit(
            m,
            2,
            &parent_l.as_slice()[l_off..],
            10,
            &mut parent_b.as_mut_slice()[b_off..],
            10,
        );
        assert!(parent_b.submatrix(2, 1, m, 2).approx_eq(&x_true, 1e-12));
        assert_eq!(parent_b.get(0, 0), 0.0);
    }

    #[test]
    fn raw_variants_match_safe() {
        let l = unit_lower(6, 9);
        let u = upper(6, 10);
        let b0 = gen::uniform(6, 6, 11);
        let mut b1 = b0.clone();
        let mut b2 = b0.clone();
        dtrsm_left_lower_unit(6, 6, l.as_slice(), 6, b1.as_mut_slice(), 6);
        unsafe {
            dtrsm_left_lower_unit_raw(
                6,
                6,
                l.as_slice().as_ptr(),
                6,
                b2.as_mut_slice().as_mut_ptr(),
                6,
            )
        };
        assert!(b1.approx_eq(&b2, 0.0));
        let mut b1 = b0.clone();
        let mut b2 = b0.clone();
        dtrsm_right_upper(6, 6, u.as_slice(), 6, b1.as_mut_slice(), 6);
        unsafe {
            dtrsm_right_upper_raw(
                6,
                6,
                u.as_slice().as_ptr(),
                6,
                b2.as_mut_slice().as_mut_ptr(),
                6,
            )
        };
        assert!(b1.approx_eq(&b2, 0.0));
    }

    #[test]
    fn empty_is_noop() {
        let mut b: Vec<f64> = vec![];
        dtrsm_left_lower_unit(0, 3, &[], 1, &mut b, 1);
        dtrsm_right_upper(3, 0, &[], 1, &mut b, 1);
    }
}
