//! Row interchanges (`dlaswp`): applies a recorded pivot sequence to the
//! columns of a block — the "right swap" / "left swap" steps of
//! Algorithm 1.

/// Apply the swap sequence to an `? × n` column-major block: for each
/// `k`, rows `first + k` and `piv[k]` are exchanged (both indices are
/// rows *of this block*). Swaps are applied in ascending `k`, matching
/// LAPACK `dlaswp` with increment 1.
pub fn dlaswp(n: usize, a: &mut [f64], lda: usize, first: usize, piv: &[usize]) {
    if n == 0 || piv.is_empty() {
        return;
    }
    let max_row = piv
        .iter()
        .copied()
        .chain(std::iter::once(first + piv.len() - 1))
        .max()
        .unwrap();
    assert!(
        lda > max_row,
        "lda must exceed the largest swapped row index"
    );
    assert!(
        a.len() > (n - 1) * lda + max_row,
        "block too short for swaps"
    );
    for (k, &p) in piv.iter().enumerate() {
        let r = first + k;
        if p == r {
            continue;
        }
        for j in 0..n {
            a.swap(j * lda + r, j * lda + p);
        }
    }
}

/// Reverse of [`dlaswp`]: applies the same swaps in descending order,
/// undoing the permutation.
pub fn dlaswp_inverse(n: usize, a: &mut [f64], lda: usize, first: usize, piv: &[usize]) {
    if n == 0 || piv.is_empty() {
        return;
    }
    for (k, &p) in piv.iter().enumerate().rev() {
        let r = first + k;
        if p == r {
            continue;
        }
        for j in 0..n {
            a.swap(j * lda + r, j * lda + p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use calu_matrix::{gen, DenseMatrix};

    #[test]
    fn swap_then_inverse_is_identity() {
        let a0 = gen::uniform(8, 5, 3);
        let mut a = a0.clone();
        let piv = vec![4, 1, 7, 3];
        let ld = a.ld();
        dlaswp(5, a.as_mut_slice(), ld, 0, &piv);
        assert!(!a.approx_eq(&a0, 0.0));
        dlaswp_inverse(5, a.as_mut_slice(), ld, 0, &piv);
        assert!(a.approx_eq(&a0, 0.0));
    }

    #[test]
    fn matches_manual_swaps() {
        let mut a = DenseMatrix::from_rows(3, 2, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let ld = a.ld();
        dlaswp(2, a.as_mut_slice(), ld, 0, &[2, 1]);
        // step 0: swap rows 0,2 -> [5 6; 3 4; 1 2]; step 1: swap rows 1,1 (noop)
        let want = DenseMatrix::from_rows(3, 2, &[5.0, 6.0, 3.0, 4.0, 1.0, 2.0]).unwrap();
        assert!(a.approx_eq(&want, 0.0));
    }

    #[test]
    fn first_offsets_swap_rows() {
        let mut a = DenseMatrix::from_rows(4, 1, &[0.0, 1.0, 2.0, 3.0]).unwrap();
        let ld = a.ld();
        // swap step for k=0 exchanges rows first+0=2 and piv[0]=3
        dlaswp(1, a.as_mut_slice(), ld, 2, &[3]);
        assert_eq!(a.get(2, 0), 3.0);
        assert_eq!(a.get(3, 0), 2.0);
    }

    #[test]
    fn empty_inputs_are_noops() {
        let mut a: Vec<f64> = vec![1.0, 2.0];
        dlaswp(0, &mut a, 2, 0, &[1]);
        dlaswp(1, &mut a, 2, 0, &[]);
        assert_eq!(a, vec![1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "lda")]
    fn rejects_out_of_range_rows() {
        let mut a = vec![0.0; 4];
        dlaswp(1, &mut a, 2, 0, &[5]);
    }
}
