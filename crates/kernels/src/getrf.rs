//! Gaussian elimination with partial pivoting on a column-major panel.
//!
//! [`dgetf2`] is the unblocked reference (LAPACK's `dgetf2`), and
//! [`dgetrf_recursive`] is Toledo's recursive formulation — the paper's
//! pick for the TSLU reduction operator ("In our experiments we use
//! recursive LU \[23\]", §3), because its BLAS-3-rich structure is the best
//! sequential panel algorithm.

use crate::laswp::dlaswp;
use crate::pack::{with_thread_scratch, GemmScratch};
use crate::small::idamax;
use crate::trsm::dtrsm_left_lower_unit_packed;

/// Outcome of a panel factorization with partial pivoting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PanelPivots {
    /// `piv[k]` = row (0-based, local to the panel) swapped with row `k`
    /// at elimination step `k`. Always `piv[k] >= k`.
    pub piv: Vec<usize>,
    /// First column where a zero pivot was met (matrix numerically
    /// singular there), if any. Elimination continues past it with the
    /// offending multipliers left at zero, LAPACK-style.
    pub singular_at: Option<usize>,
}

impl PanelPivots {
    /// True if no zero pivot was encountered.
    pub fn is_nonsingular(&self) -> bool {
        self.singular_at.is_none()
    }
}

/// Unblocked GEPP of an `m × n` column-major panel (`lda >= m`). On exit
/// the panel holds `L` (unit diagonal implicit) below and `U` on/above the
/// diagonal; the returned pivots record the row interchanges, which have
/// been applied to the *whole* panel.
pub fn dgetf2(m: usize, n: usize, a: &mut [f64], lda: usize) -> PanelPivots {
    let kmax = m.min(n);
    let mut piv = Vec::with_capacity(kmax);
    let mut singular_at = None;
    if kmax == 0 {
        return PanelPivots { piv, singular_at };
    }
    assert!(lda >= m, "lda too small");
    assert!(a.len() >= (n - 1) * lda + m, "panel slice too short");

    for k in 0..kmax {
        // pivot search on column k, rows k..m
        let col = &a[k * lda + k..k * lda + m];
        let p = k + idamax(col);
        piv.push(p);
        if a[k * lda + p] == 0.0 {
            if singular_at.is_none() {
                singular_at = Some(k);
            }
            continue; // nothing to eliminate with; multipliers stay 0
        }
        // swap rows k and p across all n columns
        if p != k {
            for j in 0..n {
                a.swap(j * lda + k, j * lda + p);
            }
        }
        // scale multipliers
        let akk = a[k * lda + k];
        let inv = 1.0 / akk;
        for v in &mut a[k * lda + k + 1..k * lda + m] {
            *v *= inv;
        }
        // rank-1 update of the trailing (m-k-1) x (n-k-1) block
        for j in (k + 1)..n {
            let akj = a[j * lda + k];
            if akj == 0.0 {
                continue;
            }
            // split so we can read column k while updating column j
            let (head, tail) = a.split_at_mut(j * lda);
            let lcol = &head[k * lda + k + 1..k * lda + m];
            let ccol = &mut tail[k + 1..m];
            crate::small::daxpy(-akj, lcol, ccol);
        }
    }
    PanelPivots { piv, singular_at }
}

/// Width below which the recursion falls back to [`dgetf2`].
const RECURSION_BASE: usize = 8;

/// Toledo's recursive LU with partial pivoting of an `m × n` panel
/// (`m >= n` recommended). Same storage contract and result semantics as
/// [`dgetf2`], but asymptotically all work happens inside the packed
/// `dgemm` (via `scratch`, so a caller reusing one arena allocates
/// nothing here beyond the pivot vector).
pub fn dgetrf_recursive_packed(
    m: usize,
    n: usize,
    a: &mut [f64],
    lda: usize,
    scratch: &mut GemmScratch,
) -> PanelPivots {
    let kmax = m.min(n);
    if kmax == 0 {
        return PanelPivots {
            piv: vec![],
            singular_at: None,
        };
    }
    if n <= RECURSION_BASE {
        return dgetf2(m, n, a, lda);
    }
    assert!(lda >= m, "lda too small");
    assert!(a.len() >= (n - 1) * lda + m, "panel slice too short");

    let n1 = (n / 2).min(kmax);
    let n2 = n - n1;

    // Factor the left half: A[0..m, 0..n1]
    let left = dgetrf_recursive_packed(m, n1, a, lda, scratch);

    // Apply its pivots to the right half A[0..m, n1..n]
    dlaswp(n2, &mut a[n1 * lda..], lda, 0, &left.piv);

    // A12 ← L11⁻¹ · A12   (n1 × n2 block at rows 0..n1 of the right half)
    {
        let (l_part, r_part) = a.split_at_mut(n1 * lda);
        dtrsm_left_lower_unit_packed(n1, n2, l_part, lda, r_part, lda, scratch);
    }

    // A22 ← A22 − A21 · A12
    if m > n1 {
        let (l_part, r_part) = a.split_at_mut(n1 * lda);
        // A21 = rows n1..m of the left half; A12 = rows 0..n1 of right half
        unsafe {
            // split_at_mut separated columns; rows within each part do not
            // overlap between reads (l_part, upper rows of r_part) and the
            // written block (lower rows of r_part), but they share the
            // r_part slice, so go through the raw-pointer GEMM (which
            // never forms slices over the operands).
            let a12 = r_part.as_ptr();
            let a22 = r_part.as_mut_ptr().add(n1);
            crate::gemm::dgemm_raw_packed(
                m - n1,
                n2,
                n1,
                -1.0,
                l_part.as_ptr().add(n1),
                lda,
                a12,
                lda,
                1.0,
                a22,
                lda,
                scratch,
            );
        }
    }

    // Factor A22 recursively
    let right = if m > n1 {
        let sub = &mut a[n1 * lda + n1..];
        dgetrf_recursive_packed(m - n1, n2, sub, lda, scratch)
    } else {
        PanelPivots {
            piv: vec![],
            singular_at: None,
        }
    };

    // Apply A22's pivots (offset by n1) to the left half rows n1..m
    let shifted: Vec<usize> = right.piv.iter().map(|p| p + n1).collect();
    dlaswp(n1, a, lda, n1, &shifted);

    let mut piv = left.piv;
    piv.extend(shifted);
    let singular_at = left.singular_at.or(right.singular_at.map(|c| c + n1));
    PanelPivots { piv, singular_at }
}

/// [`dgetrf_recursive_packed`] with the per-thread scratch arena.
pub fn dgetrf_recursive(m: usize, n: usize, a: &mut [f64], lda: usize) -> PanelPivots {
    with_thread_scratch(|s| dgetrf_recursive_packed(m, n, a, lda, s))
}

#[cfg(test)]
mod tests {
    use super::*;
    use calu_matrix::{gen, ops, DenseMatrix, RowPerm};

    /// reconstruct P·A from the factored panel and compare to L·U
    fn check_plu(orig: &DenseMatrix, factored: &DenseMatrix, piv: &[usize], tol: f64) {
        let perm = RowPerm::from_pivots(0, piv.to_vec());
        let pa = perm.permuted(orig);
        let l = factored.lower_unit();
        let u = factored.upper();
        let lu = ops::matmul(&l, &u);
        assert!(
            lu.approx_eq(&pa, tol),
            "PA != LU (max diff {})",
            ops::sub(&lu, &pa).max_abs()
        );
    }

    fn run_getf2(a: &DenseMatrix) -> (DenseMatrix, PanelPivots) {
        let mut f = a.clone();
        let (m, n, ld) = (f.rows(), f.cols(), f.ld());
        let piv = dgetf2(m, n, f.as_mut_slice(), ld);
        (f, piv)
    }

    fn run_recursive(a: &DenseMatrix) -> (DenseMatrix, PanelPivots) {
        let mut f = a.clone();
        let (m, n, ld) = (f.rows(), f.cols(), f.ld());
        let piv = dgetrf_recursive(m, n, f.as_mut_slice(), ld);
        (f, piv)
    }

    #[test]
    fn getf2_factors_square_matrices() {
        for n in [1, 2, 5, 16, 33] {
            let a = gen::uniform(n, n, n as u64);
            let (f, p) = run_getf2(&a);
            assert!(p.is_nonsingular());
            check_plu(&a, &f, &p.piv, 1e-10);
        }
    }

    #[test]
    fn getf2_factors_tall_panels() {
        for (m, n) in [(10, 3), (64, 8), (100, 1)] {
            let a = gen::uniform(m, n, 9);
            let (f, p) = run_getf2(&a);
            assert!(p.is_nonsingular());
            assert_eq!(p.piv.len(), n);
            check_plu(&a, &f, &p.piv, 1e-10);
        }
    }

    #[test]
    fn getf2_picks_largest_pivot() {
        let a =
            DenseMatrix::from_rows(3, 3, &[1.0, 2.0, 3.0, 10.0, 5.0, 6.0, 2.0, 8.0, 9.0]).unwrap();
        let (_, p) = run_getf2(&a);
        assert_eq!(p.piv[0], 1, "row 1 holds the largest first-column entry");
    }

    #[test]
    fn nan_in_pivot_column_is_selected() {
        // regression for idamax's NaN handling: a NaN in the pivot
        // column must win the search (LAPACK-consistent) and poison the
        // factorization visibly, not lose every `>` comparison and let a
        // garbage finite pivot through silently
        let mut a = gen::uniform(5, 3, 99);
        a.set(3, 0, f64::NAN);
        let (f, p) = run_getf2(&a);
        assert_eq!(p.piv[0], 3, "NaN row wins the pivot search");
        assert!(f.get(0, 0).is_nan(), "NaN pivot lands on the diagonal");
        assert!(
            (1..5).all(|i| f.get(i, 0).is_nan()),
            "multipliers scaled by 1/NaN are NaN, not garbage"
        );
        // the recursive formulation goes through the same search
        let (_, pr) = run_recursive(&a);
        assert_eq!(pr.piv[0], 3);
    }

    #[test]
    fn getf2_flags_singularity_and_continues() {
        let a = gen::rank_deficient(6, 6, 3, 11);
        let (_, p) = run_getf2(&a);
        // exact zero pivots may be blurred by roundoff; the flag is set
        // only for exactly-zero pivots, so check factorization length
        assert_eq!(p.piv.len(), 6);
        let z = DenseMatrix::zeros(4, 4);
        let (_, p) = run_getf2(&z);
        assert_eq!(p.singular_at, Some(0));
    }

    #[test]
    fn recursive_matches_getf2_pivots_and_factors() {
        for (m, n, seed) in [
            (16, 16, 1),
            (40, 24, 2),
            (100, 32, 3),
            (7, 7, 4),
            (65, 64, 5),
        ] {
            let a = gen::uniform(m, n, seed);
            let (f1, p1) = run_getf2(&a);
            let (f2, p2) = run_recursive(&a);
            assert_eq!(p1.piv, p2.piv, "pivot sequences must agree ({m}x{n})");
            assert!(f1.approx_eq(&f2, 1e-9), "factors must agree ({m}x{n})");
            assert!(p2.is_nonsingular());
            check_plu(&a, &f2, &p2.piv, 1e-9);
        }
    }

    #[test]
    fn recursive_on_wide_matrix() {
        let a = gen::uniform(8, 20, 6);
        let (f, p) = run_recursive(&a);
        assert_eq!(p.piv.len(), 8);
        check_plu(&a, &f, &p.piv, 1e-10);
    }

    #[test]
    fn recursive_handles_wilkinson_growth_matrix() {
        let a = gen::wilkinson(20);
        let (f, p) = run_recursive(&a);
        assert!(p.is_nonsingular());
        check_plu(&a, &f, &p.piv, 1e-6); // growth 2^19 amplifies roundoff
                                         // growth factor is exactly 2^(n-1) for Wilkinson's matrix
        let growth = f.upper().max_abs() / a.max_abs();
        assert!((growth - 2f64.powi(19)).abs() / 2f64.powi(19) < 1e-12);
    }

    #[test]
    fn works_with_leading_dimension_bigger_than_m() {
        // factor a 6x4 block inside a 10x8 parent
        let parent = gen::uniform(10, 8, 7);
        let block = parent.submatrix(2, 1, 6, 4);
        let mut work = parent.clone();
        let off = 10 + 2;
        let p = dgetrf_recursive(6, 4, &mut work.as_mut_slice()[off..], 10);
        let f = work.submatrix(2, 1, 6, 4);
        check_plu(&block, &f, &p.piv, 1e-10);
        // rows outside the block untouched
        assert_eq!(work.get(0, 0), parent.get(0, 0));
        assert_eq!(work.get(9, 7), parent.get(9, 7));
    }

    #[test]
    fn empty_panel() {
        let mut a: Vec<f64> = vec![];
        let p = dgetf2(0, 0, &mut a, 1);
        assert!(p.piv.is_empty());
        let p = dgetrf_recursive(0, 0, &mut a, 1);
        assert!(p.piv.is_empty());
    }
}
