//! BLAS-1 helpers shared by the larger kernels.

/// Index of the element with largest absolute value in `x` (first on
/// ties). NaN is treated as larger than everything — the first NaN wins
/// — matching LAPACK's pivot-search convention, so a NaN in a pivot
/// column surfaces as the pivot (and poisons the factorization visibly)
/// instead of silently losing every `>` comparison and letting a garbage
/// pivot through. Panics on an empty slice.
#[inline]
pub fn idamax(x: &[f64]) -> usize {
    assert!(!x.is_empty(), "idamax of empty vector");
    let mut best = 0;
    let mut bv = x[0].abs();
    if bv.is_nan() {
        return 0;
    }
    for (i, &v) in x.iter().enumerate().skip(1) {
        let a = v.abs();
        if a.is_nan() {
            return i;
        }
        if a > bv {
            bv = a;
            best = i;
        }
    }
    best
}

/// `y ← y + alpha·x` over equal-length slices.
#[inline]
pub fn daxpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// `x ← alpha·x`.
#[inline]
pub fn dscal(alpha: f64, x: &mut [f64]) {
    for v in x {
        *v *= alpha;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idamax_finds_largest_abs() {
        assert_eq!(idamax(&[1.0, -5.0, 3.0]), 1);
        assert_eq!(idamax(&[2.0]), 0);
        // first index wins ties
        assert_eq!(idamax(&[-4.0, 4.0]), 0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn idamax_empty_panics() {
        idamax(&[]);
    }

    #[test]
    fn idamax_treats_nan_as_largest() {
        // regression: NaN never wins `a > bv`, so the old code silently
        // selected a garbage pivot; LAPACK-consistent behavior is that
        // the first NaN wins the search
        assert_eq!(idamax(&[1.0, f64::NAN, 5.0]), 1);
        assert_eq!(idamax(&[f64::NAN, 9.0]), 0);
        assert_eq!(idamax(&[2.0, f64::NAN, f64::NAN]), 1, "first NaN wins");
        assert_eq!(idamax(&[-3.0, f64::NEG_INFINITY]), 1, "inf is just large");
    }

    #[test]
    fn daxpy_accumulates() {
        let x = [1.0, 2.0, 3.0];
        let mut y = [10.0, 20.0, 30.0];
        daxpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0, 36.0]);
    }

    #[test]
    fn dscal_scales() {
        let mut x = [1.0, -2.0];
        dscal(-3.0, &mut x);
        assert_eq!(x, [-3.0, 6.0]);
    }
}
