//! Property-based structural tests of the task graphs.

use calu_dag::{critical_path, DagVariant, TaskGraph, TaskKind};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Structural invariants hold for every variant and shape.
    #[test]
    fn graphs_are_well_formed(
        mt in 1usize..12,
        nt in 1usize..12,
        stride in 1usize..6,
        ragged_m in 0usize..99,
        ragged_n in 0usize..99,
    ) {
        let m = (mt - 1) * 100 + 1 + ragged_m;
        let n = (nt - 1) * 100 + 1 + ragged_n;
        for g in [
            TaskGraph::build_calu(m, n, 100, stride),
            TaskGraph::build_gepp(m, n, 100),
            TaskGraph::build_incpiv(m, n, 100),
        ] {
            // topological arena order
            for t in g.ids() {
                for &s in g.successors(t) {
                    prop_assert!(s.0 > t.0);
                }
            }
            // dep counts match incoming edges
            let mut incoming = vec![0u32; g.len()];
            for t in g.ids() {
                for &s in g.successors(t) {
                    incoming[s.idx()] += 1;
                }
            }
            for t in g.ids() {
                prop_assert_eq!(incoming[t.idx()], g.dep_count(t));
            }
            // exactly one PanelFinish per panel
            let finishes = g.ids().filter(|&t| matches!(g.kind(t), TaskKind::PanelFinish { .. })).count();
            prop_assert_eq!(finishes, g.num_panels());
            prop_assert_eq!(g.num_panels(), g.tile_rows().min(g.tile_cols()));
        }
    }

    /// The whole DAG is reachable: executing in arena order satisfies
    /// every dependency (no lost tasks, no cycles by construction).
    #[test]
    fn arena_order_is_a_valid_schedule(
        mt in 1usize..10,
        nt in 1usize..10,
        stride in 1usize..5,
    ) {
        let g = TaskGraph::build_calu(mt * 64, nt * 64, 64, stride);
        let mut deps: Vec<u32> = g.ids().map(|t| g.dep_count(t)).collect();
        for t in g.ids() {
            prop_assert_eq!(deps[t.idx()], 0, "task not ready in arena order");
            for &s in g.successors(t) {
                deps[s.idx()] -= 1;
            }
        }
    }

    /// S-task count matches the closed form Σ (M−k−1)(N−k−1).
    #[test]
    fn update_counts_closed_form(
        mt in 1usize..14,
        nt in 1usize..14,
    ) {
        let g = TaskGraph::build(mt * 50, nt * 50, 50);
        let (_, _, _, s) = g.counts_by_kind();
        let expect: usize = (0..mt.min(nt))
            .map(|k| (mt - k - 1) * (nt - k - 1))
            .sum();
        prop_assert_eq!(s, expect);
    }

    /// Critical path length is monotone in the subset: restricting tasks
    /// can only shorten the longest path.
    #[test]
    fn critical_path_monotone(
        mt in 2usize..10,
        nstatic in 0usize..10,
    ) {
        let g = TaskGraph::build(mt * 64, mt * 64, 64);
        let full = critical_path(&g, |_| true, |_| 1.0);
        let sub = critical_path(&g, |t| g.kind(t).writes_col() < nstatic, |_| 1.0);
        prop_assert!(sub.length <= full.length);
    }

    /// GEPP variant has strictly fewer tasks than CALU (its panels are
    /// single tasks), incpiv sits between on dependency depth.
    #[test]
    fn variant_task_counts(
        mt in 2usize..10,
    ) {
        let n = mt * 80;
        let calu = TaskGraph::build(n, n, 80);
        let gepp = TaskGraph::build_gepp(n, n, 80);
        prop_assert!(gepp.len() < calu.len());
        prop_assert_eq!(gepp.variant(), DagVariant::GeppPanelSeq);
    }
}
