//! Randomized-sweep structural tests of the task graphs (formerly
//! proptest; deterministic seeded sweeps in the hermetic workspace).

use calu_dag::{critical_path, DagVariant, TaskGraph, TaskKind};
use calu_rand::Rng;

/// Structural invariants hold for every variant and shape.
#[test]
fn graphs_are_well_formed() {
    let mut rng = Rng::seed_from_u64(10);
    for _ in 0..24 {
        let mt = rng.gen_range(1..12);
        let nt = rng.gen_range(1..12);
        let stride = rng.gen_range(1..6);
        let m = (mt - 1) * 100 + 1 + rng.gen_range(0..99);
        let n = (nt - 1) * 100 + 1 + rng.gen_range(0..99);
        for g in [
            TaskGraph::build_calu(m, n, 100, stride),
            TaskGraph::build_gepp(m, n, 100),
            TaskGraph::build_incpiv(m, n, 100),
        ] {
            // topological arena order
            for t in g.ids() {
                for &s in g.successors(t) {
                    assert!(s.0 > t.0);
                }
            }
            // dep counts match incoming edges
            let mut incoming = vec![0u32; g.len()];
            for t in g.ids() {
                for &s in g.successors(t) {
                    incoming[s.idx()] += 1;
                }
            }
            for t in g.ids() {
                assert_eq!(incoming[t.idx()], g.dep_count(t));
            }
            // exactly one PanelFinish per panel
            let finishes = g
                .ids()
                .filter(|&t| matches!(g.kind(t), TaskKind::PanelFinish { .. }))
                .count();
            assert_eq!(finishes, g.num_panels());
            assert_eq!(g.num_panels(), g.tile_rows().min(g.tile_cols()));
        }
    }
}

/// The whole DAG is reachable: executing in arena order satisfies
/// every dependency (no lost tasks, no cycles by construction).
#[test]
fn arena_order_is_a_valid_schedule() {
    let mut rng = Rng::seed_from_u64(11);
    for _ in 0..24 {
        let mt = rng.gen_range(1..10);
        let nt = rng.gen_range(1..10);
        let stride = rng.gen_range(1..5);
        let g = TaskGraph::build_calu(mt * 64, nt * 64, 64, stride);
        let mut deps: Vec<u32> = g.ids().map(|t| g.dep_count(t)).collect();
        for t in g.ids() {
            assert_eq!(deps[t.idx()], 0, "task not ready in arena order");
            for &s in g.successors(t) {
                deps[s.idx()] -= 1;
            }
        }
    }
}

/// S-task count matches the closed form Σ (M−k−1)(N−k−1).
#[test]
fn update_counts_closed_form() {
    for mt in 1..14 {
        for nt in [1usize, 2, 3, 5, 8, 13] {
            let g = TaskGraph::build(mt * 50, nt * 50, 50);
            let (_, _, _, s) = g.counts_by_kind();
            let expect: usize = (0..mt.min(nt)).map(|k| (mt - k - 1) * (nt - k - 1)).sum();
            assert_eq!(s, expect);
        }
    }
}

/// Critical path length is monotone in the subset: restricting tasks
/// can only shorten the longest path.
#[test]
fn critical_path_monotone() {
    for mt in 2..10 {
        for nstatic in 0..10 {
            let g = TaskGraph::build(mt * 64, mt * 64, 64);
            let full = critical_path(&g, |_| true, |_| 1.0);
            let sub = critical_path(&g, |t| g.kind(t).writes_col() < nstatic, |_| 1.0);
            assert!(sub.length <= full.length);
        }
    }
}

/// GEPP variant has strictly fewer tasks than CALU (its panels are
/// single tasks).
#[test]
fn variant_task_counts() {
    for mt in 2..10 {
        let n = mt * 80;
        let calu = TaskGraph::build(n, n, 80);
        let gepp = TaskGraph::build_gepp(n, n, 80);
        assert!(gepp.len() < calu.len());
        assert_eq!(gepp.variant(), DagVariant::GeppPanelSeq);
    }
}
