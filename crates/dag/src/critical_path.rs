//! Longest (critical) paths through the task graph.
//!
//! The hybrid scheduler creates *two* critical paths (§3, Figure 3): the
//! path of the statically scheduled subgraph — which coincides with the
//! critical path of the whole CALU DAG — and the path of the dynamically
//! scheduled subgraph. [`critical_path`] computes the longest path under
//! an arbitrary task-cost function restricted to an arbitrary subset of
//! tasks, which covers both.

use crate::graph::TaskGraph;
use crate::task::TaskId;

/// Result of a longest-path computation.
#[derive(Debug, Clone)]
pub struct CriticalPath {
    /// Total weight along the path.
    pub length: f64,
    /// The tasks on the path, in execution order.
    pub tasks: Vec<TaskId>,
}

/// Longest path through the subgraph of tasks for which `include` returns
/// true, with per-task weights from `cost`. Returns a zero path if the
/// subset is empty.
///
/// Runs in `O(V + E)` over the topologically ordered arena.
pub fn critical_path(
    g: &TaskGraph,
    mut include: impl FnMut(TaskId) -> bool,
    mut cost: impl FnMut(TaskId) -> f64,
) -> CriticalPath {
    let n = g.len();
    let mut dist = vec![f64::NEG_INFINITY; n];
    let mut pred: Vec<Option<TaskId>> = vec![None; n];
    let mut best_end: Option<TaskId> = None;
    let mut best = f64::NEG_INFINITY;

    for t in g.ids() {
        if !include(t) {
            continue;
        }
        if dist[t.idx()] == f64::NEG_INFINITY {
            // source within the subset
            dist[t.idx()] = cost(t);
        }
        let d = dist[t.idx()];
        if d > best {
            best = d;
            best_end = Some(t);
        }
        for &s in g.successors(t) {
            if !include(s) {
                continue;
            }
            let cand = d + cost(s);
            if cand > dist[s.idx()] {
                dist[s.idx()] = cand;
                pred[s.idx()] = Some(t);
            }
        }
    }

    let Some(mut cur) = best_end else {
        return CriticalPath {
            length: 0.0,
            tasks: vec![],
        };
    };
    let mut tasks = vec![cur];
    while let Some(p) = pred[cur.idx()] {
        tasks.push(p);
        cur = p;
    }
    tasks.reverse();
    CriticalPath {
        length: best,
        tasks,
    }
}

/// Critical path of the *entire* DAG with unit task costs (a pure
/// dependency-depth measure).
pub fn unit_critical_path(g: &TaskGraph) -> CriticalPath {
    critical_path(g, |_| true, |_| 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskKind;

    #[test]
    fn unit_path_on_single_tile() {
        let g = TaskGraph::build(50, 50, 100);
        let cp = unit_critical_path(&g);
        assert_eq!(cp.length, 2.0); // leaf -> finish
        assert_eq!(cp.tasks.len(), 2);
    }

    #[test]
    fn path_is_a_chain_of_edges() {
        let g = TaskGraph::build(400, 400, 100);
        let cp = unit_critical_path(&g);
        for w in cp.tasks.windows(2) {
            assert!(
                g.successors(w[0]).contains(&w[1]),
                "consecutive path tasks must be linked"
            );
        }
        assert_eq!(cp.length as usize, cp.tasks.len());
    }

    #[test]
    fn path_grows_with_matrix_size() {
        let small = unit_critical_path(&TaskGraph::build(300, 300, 100));
        let large = unit_critical_path(&TaskGraph::build(800, 800, 100));
        assert!(large.length > small.length);
    }

    #[test]
    fn path_starts_at_a_source_and_ends_at_a_sink() {
        let g = TaskGraph::build(500, 500, 100);
        let cp = unit_critical_path(&g);
        let first = cp.tasks[0];
        let last = *cp.tasks.last().unwrap();
        assert_eq!(g.dep_count(first), 0);
        assert!(g.successors(last).is_empty());
        // CALU's critical path ends in the last panel's finish
        assert!(matches!(g.kind(last), TaskKind::PanelFinish { .. }));
    }

    #[test]
    fn weighted_path_prefers_heavy_tasks() {
        let g = TaskGraph::build(400, 400, 100);
        // make updates enormously expensive: the path must route through S
        let cp = critical_path(
            &g,
            |_| true,
            |t| match g.kind(t) {
                TaskKind::Update { .. } => 1000.0,
                _ => 1.0,
            },
        );
        let n_updates = cp
            .tasks
            .iter()
            .filter(|&&t| matches!(g.kind(t), TaskKind::Update { .. }))
            .count();
        assert!(n_updates >= 3, "heavy S tasks must be on the path");
    }

    #[test]
    fn restricted_subgraph_paths() {
        // Fig 3: static path over panels < Nstatic, dynamic path over the rest
        let g = TaskGraph::build(400, 400, 100);
        let nstatic = 3;
        let stat = critical_path(&g, |t| g.kind(t).writes_col() < nstatic, |_| 1.0);
        let dyn_ = critical_path(&g, |t| g.kind(t).writes_col() >= nstatic, |_| 1.0);
        assert!(stat.length > 0.0);
        assert!(dyn_.length > 0.0);
        // the two subsets are disjoint
        for t in &stat.tasks {
            assert!(g.kind(*t).writes_col() < nstatic);
        }
        for t in &dyn_.tasks {
            assert!(g.kind(*t).writes_col() >= nstatic);
        }
        // whole-graph path at least as long as either restriction
        let full = unit_critical_path(&g);
        assert!(full.length >= stat.length);
        assert!(full.length >= dyn_.length);
    }

    #[test]
    fn empty_subset_gives_zero_path() {
        let g = TaskGraph::build(300, 300, 100);
        let cp = critical_path(&g, |_| false, |_| 1.0);
        assert_eq!(cp.length, 0.0);
        assert!(cp.tasks.is_empty());
    }
}
