//! Construction and storage of the CALU task graph.

use crate::task::{PaperKind, TaskId, TaskKind};

/// Which factorization algorithm a [`TaskGraph`] describes. The task
/// kinds are shared; the variant changes the dependency shape and how the
/// cost model prices each task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DagVariant {
    /// CALU with tournament pivoting: parallel TSLU reduction tree per
    /// panel (the paper's algorithm).
    Calu,
    /// Gaussian elimination with partial pivoting, LAPACK/MKL style: the
    /// whole panel factorization is **one sequential task** on the
    /// critical path (`PanelFinish` covers the full `(M−k)·b × b` GEPP).
    GeppPanelSeq,
    /// Tiled LU with incremental (block pairwise) pivoting, PLASMA's
    /// `dgetrf_incpiv`: the panel is off the critical path but column
    /// chains serialize (`ComputeL` = TSTRF chain, `Update` = SSSSM
    /// chain) and extra flops are spent on the stacked factorizations.
    TileIncPiv,
    /// Tiled Cholesky factorization (`A = L·Lᵀ`, lower) — the paper's §9
    /// future-work extension: no pivoting, so the DAG is the classic
    /// POTRF (`PanelFinish`) / TRSM (`ComputeL`) / SYRK+GEMM (`Update`)
    /// shape over the lower triangle.
    TileCholesky,
}

/// The complete task dependency graph of a tiled factorization.
///
/// Tasks live in a flat arena indexed by [`TaskId`]; successors are held
/// in CSR form. The arena order is topological: every dependency has a
/// smaller id than its dependents.
#[derive(Debug, Clone)]
pub struct TaskGraph {
    m: usize,
    n: usize,
    b: usize,
    mt: usize,
    nt: usize,
    variant: DagVariant,
    /// TSLU leaves cover every `leaf_stride`-th tile row (CALU variant).
    leaf_stride: usize,
    kinds: Vec<TaskKind>,
    dep_count: Vec<u32>,
    succ_off: Vec<u32>,
    succ: Vec<TaskId>,
    finish_ids: Vec<TaskId>,
}

/// Internal builder accumulating tasks and edges.
struct Builder {
    kinds: Vec<TaskKind>,
    dep_count: Vec<u32>,
    edges: Vec<(u32, u32)>,
    finish_ids: Vec<TaskId>,
}

impl Builder {
    fn new() -> Self {
        Self {
            kinds: Vec::new(),
            dep_count: Vec::new(),
            edges: Vec::new(),
            finish_ids: Vec::new(),
        }
    }

    fn push(&mut self, kind: TaskKind, deps: &[u32]) -> u32 {
        let id = self.kinds.len() as u32;
        self.kinds.push(kind);
        self.dep_count.push(deps.len() as u32);
        for &d in deps {
            debug_assert!(d < id, "dependency must precede dependent");
            self.edges.push((d, id));
        }
        id
    }

    fn finish(self, m: usize, n: usize, b: usize, variant: DagVariant) -> TaskGraph {
        let ntasks = self.kinds.len();
        let mut succ_off = vec![0u32; ntasks + 1];
        for &(from, _) in &self.edges {
            succ_off[from as usize + 1] += 1;
        }
        for i in 0..ntasks {
            succ_off[i + 1] += succ_off[i];
        }
        let mut cursor = succ_off.clone();
        let mut succ = vec![TaskId(0); self.edges.len()];
        for &(from, to) in &self.edges {
            let c = &mut cursor[from as usize];
            succ[*c as usize] = TaskId(to);
            *c += 1;
        }
        TaskGraph {
            m,
            n,
            b,
            mt: m.div_ceil(b),
            nt: n.div_ceil(b),
            variant,
            leaf_stride: 1,
            kinds: self.kinds,
            dep_count: self.dep_count,
            succ_off,
            succ,
            finish_ids: self.finish_ids,
        }
    }
}

impl TaskGraph {
    /// Build the DAG for an `m × n` matrix with tile size `b`.
    ///
    /// Dependencies implemented (tile indices; `k` = panel):
    /// * `PanelLeaf(k,i)`   ← `Update(k−1,i,k)` (k>0)
    /// * `PanelCombine`     ← its two children in the binary reduction tree
    /// * `PanelFinish(k)`   ← the tree root
    /// * `ComputeL(k,i)`    ← `PanelFinish(k)`
    /// * `ComputeU(k,j)`    ← `PanelFinish(k)` and every `Update(k−1,i,j)`,
    ///   `i ∈ k..M` — the panel's row swaps span the whole trailing column
    /// * `Update(k,i,j)`    ← `ComputeL(k,i)`, `ComputeU(k,j)`
    pub fn build(m: usize, n: usize, b: usize) -> TaskGraph {
        let mt = m.div_ceil(b);
        Self::build_calu(m, n, b, mt.max(1))
    }

    /// Build the CALU DAG with at most `leaf_stride` TSLU leaves per
    /// panel; leaf `r` covers tile rows `k+r, k+r+leaf_stride, …` (the
    /// residue class `r`). The paper's TSLU is a reduction over the `pr`
    /// threads of the grid column owning the panel ("each thread
    /// executing this task performs a reduction", §3), so passing
    /// `leaf_stride = pr` gives one leaf per participating thread (its
    /// chunk = exactly the tile rows it owns block-cyclically) and a
    /// reduction tree of depth `log2(pr)`. Passing `leaf_stride >= M`
    /// degenerates to one leaf per tile row ([`TaskGraph::build`]).
    pub fn build_calu(m: usize, n: usize, b: usize, leaf_stride: usize) -> TaskGraph {
        assert!(b > 0, "block size must be positive");
        assert!(m > 0 && n > 0, "matrix must be non-empty");
        assert!(leaf_stride > 0, "leaf stride must be positive");
        let mt = m.div_ceil(b);
        let nt = n.div_ceil(b);
        let np = mt.min(nt);

        let mut bld = Builder::new();

        // Update(k-1, i, j) task ids, indexed by i*nt + j.
        let mut prev_update: Vec<u32> = vec![u32::MAX; mt * nt];
        let mut cur_update: Vec<u32> = vec![u32::MAX; mt * nt];

        for k in 0..np {
            // --- TSLU leaves: one per residue class of tile rows ---
            let nleaves = leaf_stride.min(mt - k);
            let mut level_nodes: Vec<u32> = Vec::with_capacity(nleaves);
            let mut deps: Vec<u32> = Vec::new();
            for r in 0..nleaves {
                deps.clear();
                if k > 0 {
                    let mut i = k + r;
                    while i < mt {
                        deps.push(prev_update[i * nt + k]);
                        i += leaf_stride;
                    }
                }
                let id = bld.push(
                    TaskKind::PanelLeaf {
                        k: k as u32,
                        i: (k + r) as u32,
                    },
                    &deps,
                );
                level_nodes.push(id);
            }

            // --- binary reduction tree ---
            let mut level = 1u32;
            while level_nodes.len() > 1 {
                let mut next: Vec<u32> = Vec::with_capacity(level_nodes.len().div_ceil(2));
                for (idx, pair) in level_nodes.chunks(2).enumerate() {
                    if pair.len() == 2 {
                        let id = bld.push(
                            TaskKind::PanelCombine {
                                k: k as u32,
                                level,
                                idx: idx as u32,
                            },
                            pair,
                        );
                        next.push(id);
                    } else {
                        // odd node is promoted unchanged
                        next.push(pair[0]);
                    }
                }
                level_nodes = next;
                level += 1;
            }

            // --- finish: swap pivots in, factor diagonal tile ---
            let root = level_nodes[0];
            let fin = bld.push(TaskKind::PanelFinish { k: k as u32 }, &[root]);
            bld.finish_ids.push(TaskId(fin));

            // --- L tiles ---
            let mut l_ids: Vec<u32> = Vec::with_capacity(mt - k - 1);
            for i in (k + 1)..mt {
                let id = bld.push(
                    TaskKind::ComputeL {
                        k: k as u32,
                        i: i as u32,
                    },
                    &[fin],
                );
                l_ids.push(id);
            }

            // --- U tiles and trailing updates ---
            let mut deps_buf: Vec<u32> = Vec::with_capacity(mt - k + 1);
            for j in (k + 1)..nt {
                deps_buf.clear();
                deps_buf.push(fin);
                if k > 0 {
                    for i in k..mt {
                        deps_buf.push(prev_update[i * nt + j]);
                    }
                }
                let u_id = bld.push(
                    TaskKind::ComputeU {
                        k: k as u32,
                        j: j as u32,
                    },
                    &deps_buf,
                );
                for (li, i) in ((k + 1)..mt).enumerate() {
                    let s_id = bld.push(
                        TaskKind::Update {
                            k: k as u32,
                            i: i as u32,
                            j: j as u32,
                        },
                        &[l_ids[li], u_id],
                    );
                    cur_update[i * nt + j] = s_id;
                }
            }

            std::mem::swap(&mut prev_update, &mut cur_update);
        }

        let mut g = bld.finish(m, n, b, DagVariant::Calu);
        g.leaf_stride = leaf_stride;
        g
    }

    /// Build the DAG of **blocked GEPP with a sequential panel
    /// factorization** — the scheduling shape of LAPACK/MKL `dgetrf`
    /// (§2: "the multithreaded LAPACK performs the panel factorization
    /// sequentially"). `PanelFinish(k)` stands for the whole `(m−kb) × b`
    /// panel GEPP; there are no `PanelLeaf`/`PanelCombine`/`ComputeL`
    /// tasks.
    pub fn build_gepp(m: usize, n: usize, b: usize) -> TaskGraph {
        assert!(b > 0, "block size must be positive");
        assert!(m > 0 && n > 0, "matrix must be non-empty");
        let mt = m.div_ceil(b);
        let nt = n.div_ceil(b);
        let np = mt.min(nt);

        let mut bld = Builder::new();
        let mut prev_update: Vec<u32> = vec![u32::MAX; mt * nt];
        let mut cur_update: Vec<u32> = vec![u32::MAX; mt * nt];

        for k in 0..np {
            // whole-panel sequential factorization
            let mut deps: Vec<u32> = Vec::new();
            if k > 0 {
                for i in k..mt {
                    deps.push(prev_update[i * nt + k]);
                }
            }
            let fin = bld.push(TaskKind::PanelFinish { k: k as u32 }, &deps);
            bld.finish_ids.push(TaskId(fin));

            let mut deps_buf: Vec<u32> = Vec::new();
            for j in (k + 1)..nt {
                deps_buf.clear();
                deps_buf.push(fin);
                if k > 0 {
                    for i in k..mt {
                        deps_buf.push(prev_update[i * nt + j]);
                    }
                }
                let u_id = bld.push(
                    TaskKind::ComputeU {
                        k: k as u32,
                        j: j as u32,
                    },
                    &deps_buf,
                );
                for i in (k + 1)..mt {
                    let s_id = bld.push(
                        TaskKind::Update {
                            k: k as u32,
                            i: i as u32,
                            j: j as u32,
                        },
                        &[u_id],
                    );
                    cur_update[i * nt + j] = s_id;
                }
            }
            std::mem::swap(&mut prev_update, &mut cur_update);
        }
        bld.finish(m, n, b, DagVariant::GeppPanelSeq)
    }

    /// Build the DAG of **tiled LU with incremental pivoting** — the
    /// scheduling shape of PLASMA's `dgetrf_incpiv` (Buttari et al. \[7\]).
    /// Task-kind reuse: `PanelFinish` = GETRF of the diagonal tile,
    /// `ComputeL(k,i)` = TSTRF of tile `(i,k)` (serial chain down the
    /// column, it updates the shared `U_kk`), `ComputeU(k,j)` = GESSM,
    /// `Update(k,i,j)` = SSSSM (serial chain down each column since each
    /// step rewrites the top tile row `(k,j)`).
    pub fn build_incpiv(m: usize, n: usize, b: usize) -> TaskGraph {
        assert!(b > 0, "block size must be positive");
        assert!(m > 0 && n > 0, "matrix must be non-empty");
        let mt = m.div_ceil(b);
        let nt = n.div_ceil(b);
        let np = mt.min(nt);

        let mut bld = Builder::new();
        let mut prev_update: Vec<u32> = vec![u32::MAX; mt * nt];
        let mut cur_update: Vec<u32> = vec![u32::MAX; mt * nt];

        for k in 0..np {
            // GETRF(k,k)
            let mut deps: Vec<u32> = Vec::new();
            if k > 0 {
                deps.push(prev_update[k * nt + k]);
            }
            let fin = bld.push(TaskKind::PanelFinish { k: k as u32 }, &deps);
            bld.finish_ids.push(TaskId(fin));

            // TSTRF chain down the panel
            let mut l_ids: Vec<u32> = Vec::with_capacity(mt - k - 1);
            let mut prev_in_chain = fin;
            for i in (k + 1)..mt {
                let mut deps = vec![prev_in_chain];
                if k > 0 {
                    deps.push(prev_update[i * nt + k]);
                }
                let id = bld.push(
                    TaskKind::ComputeL {
                        k: k as u32,
                        i: i as u32,
                    },
                    &deps,
                );
                l_ids.push(id);
                prev_in_chain = id;
            }

            // GESSM row + SSSSM chains
            for j in (k + 1)..nt {
                let mut deps = vec![fin];
                if k > 0 {
                    deps.push(prev_update[k * nt + j]);
                }
                let u_id = bld.push(
                    TaskKind::ComputeU {
                        k: k as u32,
                        j: j as u32,
                    },
                    &deps,
                );
                let mut prev_s = u_id;
                for (li, i) in ((k + 1)..mt).enumerate() {
                    let mut deps = vec![l_ids[li], prev_s];
                    if k > 0 {
                        deps.push(prev_update[i * nt + j]);
                    }
                    let s_id = bld.push(
                        TaskKind::Update {
                            k: k as u32,
                            i: i as u32,
                            j: j as u32,
                        },
                        &deps,
                    );
                    cur_update[i * nt + j] = s_id;
                    prev_s = s_id;
                }
            }
            std::mem::swap(&mut prev_update, &mut cur_update);
        }
        bld.finish(m, n, b, DagVariant::TileIncPiv)
    }

    /// Build the DAG of a **tiled Cholesky factorization** of an `n × n`
    /// SPD matrix (lower triangle). Task-kind reuse: `PanelFinish(k)` =
    /// POTRF of tile `(k,k)`, `ComputeL(k,i)` = TRSM of tile `(i,k)`,
    /// `Update(k,i,j)` (with `j <= i`) = SYRK (`i == j`) or GEMM of tile
    /// `(i,j)`. With no pivoting there is no column fan-in barrier —
    /// every update depends only on its two TRSMs and the tile's
    /// previous update.
    pub fn build_cholesky(n: usize, b: usize) -> TaskGraph {
        assert!(b > 0, "block size must be positive");
        assert!(n > 0, "matrix must be non-empty");
        let nt = n.div_ceil(b);

        let mut bld = Builder::new();
        let mut prev_update: Vec<u32> = vec![u32::MAX; nt * nt];
        let mut cur_update: Vec<u32> = vec![u32::MAX; nt * nt];

        for k in 0..nt {
            // POTRF(k,k)
            let mut deps: Vec<u32> = Vec::new();
            if k > 0 {
                deps.push(prev_update[k * nt + k]);
            }
            let fin = bld.push(TaskKind::PanelFinish { k: k as u32 }, &deps);
            bld.finish_ids.push(TaskId(fin));

            // TRSM column
            let mut l_ids: Vec<u32> = Vec::with_capacity(nt - k - 1);
            for i in (k + 1)..nt {
                let mut deps = vec![fin];
                if k > 0 {
                    deps.push(prev_update[i * nt + k]);
                }
                let id = bld.push(
                    TaskKind::ComputeL {
                        k: k as u32,
                        i: i as u32,
                    },
                    &deps,
                );
                l_ids.push(id);
            }

            // SYRK/GEMM over the trailing lower triangle
            for i in (k + 1)..nt {
                for j in (k + 1)..=i {
                    let mut deps = vec![l_ids[i - k - 1]];
                    if j != i {
                        deps.push(l_ids[j - k - 1]);
                    }
                    if k > 0 {
                        deps.push(prev_update[i * nt + j]);
                    }
                    let s_id = bld.push(
                        TaskKind::Update {
                            k: k as u32,
                            i: i as u32,
                            j: j as u32,
                        },
                        &deps,
                    );
                    cur_update[i * nt + j] = s_id;
                }
            }
            std::mem::swap(&mut prev_update, &mut cur_update);
        }
        bld.finish(n, n, b, DagVariant::TileCholesky)
    }

    /// The algorithm variant this graph encodes.
    pub fn variant(&self) -> DagVariant {
        self.variant
    }

    /// TSLU leaf stride (see [`TaskGraph::build_calu`]).
    pub fn leaf_stride(&self) -> usize {
        self.leaf_stride
    }

    /// Tile rows covered by the TSLU leaf of panel `k` whose
    /// representative tile row is `i0` (every `leaf_stride`-th row from
    /// `i0`).
    pub fn leaf_rows(&self, k: usize, i0: usize) -> impl Iterator<Item = usize> + '_ {
        let _ = k;
        (i0..self.mt).step_by(self.leaf_stride)
    }

    /// Matrix rows.
    pub fn rows(&self) -> usize {
        self.m
    }

    /// Matrix columns.
    pub fn cols(&self) -> usize {
        self.n
    }

    /// Tile size.
    pub fn block(&self) -> usize {
        self.b
    }

    /// Number of tile rows `M`.
    pub fn tile_rows(&self) -> usize {
        self.mt
    }

    /// Number of tile columns `N`.
    pub fn tile_cols(&self) -> usize {
        self.nt
    }

    /// Number of panels factored, `min(M, N)`.
    pub fn num_panels(&self) -> usize {
        self.finish_ids.len()
    }

    /// Total number of tasks.
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// True for a degenerate empty graph (never produced by `build`).
    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }

    /// Kind of task `t`.
    #[inline]
    pub fn kind(&self, t: TaskId) -> TaskKind {
        self.kinds[t.idx()]
    }

    /// Number of dependencies of task `t`.
    #[inline]
    pub fn dep_count(&self, t: TaskId) -> u32 {
        self.dep_count[t.idx()]
    }

    /// Successors of task `t`.
    #[inline]
    pub fn successors(&self, t: TaskId) -> &[TaskId] {
        &self.succ[self.succ_off[t.idx()] as usize..self.succ_off[t.idx() + 1] as usize]
    }

    /// The `PanelFinish` task of panel `k`.
    pub fn panel_finish(&self, k: usize) -> TaskId {
        self.finish_ids[k]
    }

    /// Ids of all tasks with no dependencies (ready at time zero).
    pub fn initial_ready(&self) -> Vec<TaskId> {
        (0..self.len() as u32)
            .map(TaskId)
            .filter(|t| self.dep_count(*t) == 0)
            .collect()
    }

    /// Iterate over all task ids in topological (arena) order.
    pub fn ids(&self) -> impl Iterator<Item = TaskId> {
        (0..self.len() as u32).map(TaskId)
    }

    /// Rows of tile row `ti` (handles the ragged last tile).
    pub fn tile_row_count(&self, ti: usize) -> usize {
        (self.m - ti * self.b).min(self.b)
    }

    /// Columns of tile column `tj` (handles the ragged last tile).
    pub fn tile_col_count(&self, tj: usize) -> usize {
        (self.n - tj * self.b).min(self.b)
    }

    /// Task counts per paper kind `(P, L, U, S)`.
    pub fn counts_by_kind(&self) -> (usize, usize, usize, usize) {
        let mut c = (0, 0, 0, 0);
        for k in &self.kinds {
            match k.paper_kind() {
                PaperKind::P => c.0 += 1,
                PaperKind::L => c.1 += 1,
                PaperKind::U => c.2 += 1,
                PaperKind::S => c.3 += 1,
            }
        }
        c
    }

    /// Total dependency edges.
    pub fn num_edges(&self) -> usize {
        self.succ.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 4x4 tiles — the worked example of Figures 2 and 3.
    fn fig3_graph() -> TaskGraph {
        TaskGraph::build(400, 400, 100)
    }

    #[test]
    fn counts_for_4x4_example() {
        let g = fig3_graph();
        assert_eq!(g.tile_rows(), 4);
        assert_eq!(g.tile_cols(), 4);
        assert_eq!(g.num_panels(), 4);
        let (p, l, u, s) = g.counts_by_kind();
        // leaves: 4+3+2+1 = 10; combines: 3+2+1+0 = 6; finishes: 4 → P = 20
        assert_eq!(p, 20);
        // L tiles: 3+2+1 = 6
        assert_eq!(l, 6);
        // U tiles: 3+2+1 = 6
        assert_eq!(u, 6);
        // S tiles: 9+4+1 = 14
        assert_eq!(s, 14);
        assert_eq!(g.len(), 46);
    }

    #[test]
    fn construction_order_is_topological() {
        let g = TaskGraph::build(600, 500, 100);
        for t in g.ids() {
            for &s in g.successors(t) {
                assert!(s.0 > t.0, "edge {t:?}->{s:?} violates topo order");
            }
        }
    }

    #[test]
    fn dep_counts_match_incoming_edges() {
        let g = TaskGraph::build(500, 500, 100);
        let mut incoming = vec![0u32; g.len()];
        for t in g.ids() {
            for &s in g.successors(t) {
                incoming[s.idx()] += 1;
            }
        }
        for t in g.ids() {
            assert_eq!(incoming[t.idx()], g.dep_count(t), "task {}", g.kind(t));
        }
    }

    #[test]
    fn only_first_panel_leaves_are_initially_ready() {
        let g = fig3_graph();
        let ready = g.initial_ready();
        assert_eq!(ready.len(), 4, "4 leaves of panel 0");
        for t in ready {
            match g.kind(t) {
                TaskKind::PanelLeaf { k: 0, .. } => {}
                other => panic!("unexpected initial task {other}"),
            }
        }
    }

    #[test]
    fn u_tasks_wait_for_whole_column() {
        // ComputeU(1, j) must depend on PanelFinish(1) + Update(0, i, j) for
        // i in 1..mt → dep_count = 1 + (mt - 1)
        let g = fig3_graph();
        for t in g.ids() {
            if let TaskKind::ComputeU { k: 1, .. } = g.kind(t) {
                assert_eq!(g.dep_count(t), 1 + 3);
            }
            if let TaskKind::ComputeU { k: 0, .. } = g.kind(t) {
                assert_eq!(g.dep_count(t), 1, "first panel U needs only finish");
            }
        }
    }

    #[test]
    fn reduction_tree_is_binary_and_logarithmic() {
        let g = TaskGraph::build(1600, 1600, 100); // 16 block rows
                                                   // panel 0: 16 leaves -> 8+4+2+1 = 15 combines
        let combines = g
            .ids()
            .filter(|&t| matches!(g.kind(t), TaskKind::PanelCombine { k: 0, .. }))
            .count();
        assert_eq!(combines, 15);
        let max_level = g
            .ids()
            .filter_map(|t| match g.kind(t) {
                TaskKind::PanelCombine { k: 0, level, .. } => Some(level),
                _ => None,
            })
            .max()
            .unwrap();
        assert_eq!(max_level, 4, "log2(16) levels");
    }

    #[test]
    fn tall_and_wide_matrices() {
        // tall: more tile rows than panels
        let g = TaskGraph::build(1000, 300, 100);
        assert_eq!(g.num_panels(), 3);
        assert_eq!(g.tile_rows(), 10);
        // every panel still factors rows k..mt
        let leaves0 = g
            .ids()
            .filter(|&t| matches!(g.kind(t), TaskKind::PanelLeaf { k: 0, .. }))
            .count();
        assert_eq!(leaves0, 10);
        // wide: panels limited by rows
        let g = TaskGraph::build(300, 1000, 100);
        assert_eq!(g.num_panels(), 3);
        assert_eq!(g.tile_cols(), 10);
        let u_last = g
            .ids()
            .filter(|&t| matches!(g.kind(t), TaskKind::ComputeU { k: 2, .. }))
            .count();
        assert_eq!(u_last, 7, "panel 2 solves U for columns 3..10");
    }

    #[test]
    fn ragged_tiles_reported() {
        let g = TaskGraph::build(250, 430, 100);
        assert_eq!(g.tile_rows(), 3);
        assert_eq!(g.tile_cols(), 5);
        assert_eq!(g.tile_row_count(2), 50);
        assert_eq!(g.tile_col_count(4), 30);
        assert_eq!(g.tile_col_count(0), 100);
    }

    #[test]
    fn single_tile_matrix() {
        let g = TaskGraph::build(64, 64, 100);
        // one leaf + one finish, nothing else
        assert_eq!(g.len(), 2);
        let (p, l, u, s) = g.counts_by_kind();
        assert_eq!((p, l, u, s), (2, 0, 0, 0));
        assert_eq!(g.initial_ready().len(), 1);
    }

    #[test]
    fn panel_finish_lookup() {
        let g = fig3_graph();
        for k in 0..4 {
            let t = g.panel_finish(k);
            assert!(matches!(g.kind(t), TaskKind::PanelFinish { k: kk } if kk as usize == k));
        }
    }

    #[test]
    fn update_has_exactly_two_deps() {
        let g = fig3_graph();
        for t in g.ids() {
            if matches!(g.kind(t), TaskKind::Update { .. }) {
                assert_eq!(g.dep_count(t), 2);
            }
        }
    }

    #[test]
    fn edge_count_is_consistent() {
        let g = TaskGraph::build(700, 700, 100);
        let total_deps: u32 = g.ids().map(|t| g.dep_count(t)).sum();
        assert_eq!(total_deps as usize, g.num_edges());
    }

    #[test]
    fn chunked_leaves_follow_thread_rows() {
        // 8 tile rows, stride 2: panel 0 has 2 leaves covering rows
        // {0,2,4,6} and {1,3,5,7}, one combine, then finish
        let g = TaskGraph::build_calu(800, 800, 100, 2);
        assert_eq!(g.leaf_stride(), 2);
        let leaves0: Vec<_> = g
            .ids()
            .filter(|&t| matches!(g.kind(t), TaskKind::PanelLeaf { k: 0, .. }))
            .collect();
        assert_eq!(leaves0.len(), 2);
        let rows: Vec<usize> = g.leaf_rows(0, 0).collect();
        assert_eq!(rows, vec![0, 2, 4, 6]);
        let combines0 = g
            .ids()
            .filter(|&t| matches!(g.kind(t), TaskKind::PanelCombine { k: 0, .. }))
            .count();
        assert_eq!(combines0, 1);
        // near the end, fewer rows than the stride → single leaf, no tree
        let leaves_last = g
            .ids()
            .filter(|&t| matches!(g.kind(t), TaskKind::PanelLeaf { k: 7, .. }))
            .count();
        assert_eq!(leaves_last, 1);
    }

    #[test]
    fn chunked_leaf_dependencies_cover_chunk() {
        let g = TaskGraph::build_calu(800, 800, 100, 4);
        // panel 1 leaf for residue 0 covers rows {1, 5} -> 2 update deps
        let leaf = g
            .ids()
            .find(|&t| matches!(g.kind(t), TaskKind::PanelLeaf { k: 1, i: 1 }))
            .unwrap();
        assert_eq!(g.dep_count(leaf), 2);
        // stride >= M matches the per-tile builder
        let a = TaskGraph::build(500, 500, 100);
        let b = TaskGraph::build_calu(500, 500, 100, 5);
        assert_eq!(a.len(), b.len());
        // stride 1 collapses TSLU to a single sequential leaf
        let c = TaskGraph::build_calu(500, 500, 100, 1);
        let combines = c
            .ids()
            .filter(|&t| matches!(c.kind(t), TaskKind::PanelCombine { .. }))
            .count();
        assert_eq!(combines, 0);
    }

    #[test]
    fn chunked_build_keeps_topo_and_counts() {
        let g = TaskGraph::build_calu(1000, 1000, 100, 6);
        for t in g.ids() {
            for &s in g.successors(t) {
                assert!(s.0 > t.0);
            }
        }
        let mut incoming = vec![0u32; g.len()];
        for t in g.ids() {
            for &s in g.successors(t) {
                incoming[s.idx()] += 1;
            }
        }
        for t in g.ids() {
            assert_eq!(incoming[t.idx()], g.dep_count(t));
        }
    }

    #[test]
    fn variants_are_tagged() {
        assert_eq!(TaskGraph::build(300, 300, 100).variant(), DagVariant::Calu);
        assert_eq!(
            TaskGraph::build_gepp(300, 300, 100).variant(),
            DagVariant::GeppPanelSeq
        );
        assert_eq!(
            TaskGraph::build_incpiv(300, 300, 100).variant(),
            DagVariant::TileIncPiv
        );
    }

    #[test]
    fn gepp_has_single_sequential_panel_tasks() {
        let g = TaskGraph::build_gepp(400, 400, 100);
        let (p, l, u, s) = g.counts_by_kind();
        assert_eq!(p, 4, "one panel task per panel");
        assert_eq!(l, 0, "panel task covers L");
        assert_eq!(u, 6);
        assert_eq!(s, 14);
        // panel k>0 waits for its whole column: deps = mt - k
        for k in 1..4 {
            let t = g.panel_finish(k);
            assert_eq!(g.dep_count(t), (4 - k) as u32);
        }
        // topological order maintained
        for t in g.ids() {
            for &succ in g.successors(t) {
                assert!(succ.0 > t.0);
            }
        }
    }

    #[test]
    fn gepp_critical_path_runs_through_every_panel() {
        use crate::critical_path::critical_path;
        let g = TaskGraph::build_gepp(400, 400, 100);
        // weight panel tasks heavily: path must contain all 4
        let cp = critical_path(
            &g,
            |_| true,
            |t| match g.kind(t) {
                TaskKind::PanelFinish { .. } => 100.0,
                _ => 1.0,
            },
        );
        let panels = cp
            .tasks
            .iter()
            .filter(|&&t| matches!(g.kind(t), TaskKind::PanelFinish { .. }))
            .count();
        assert_eq!(panels, 4);
    }

    #[test]
    fn incpiv_serializes_column_chains() {
        let g = TaskGraph::build_incpiv(400, 400, 100);
        // TSTRF chain: ComputeL(0, i) depends on ComputeL(0, i-1)
        let l_of = |i: u32| {
            g.ids()
                .find(|&t| g.kind(t) == TaskKind::ComputeL { k: 0, i })
                .unwrap()
        };
        assert!(g.successors(l_of(1)).contains(&l_of(2)));
        assert!(g.successors(l_of(2)).contains(&l_of(3)));
        // SSSSM chain: Update(0, i, j) depends on Update(0, i-1, j)
        let s_of = |i: u32, j: u32| {
            g.ids()
                .find(|&t| g.kind(t) == TaskKind::Update { k: 0, i, j })
                .unwrap()
        };
        assert!(g.successors(s_of(1, 2)).contains(&s_of(2, 2)));
    }

    #[test]
    fn incpiv_panel_is_off_the_global_fanin() {
        // GETRF(k) for k>0 depends only on one tile's chain, not the
        // whole column — the pipelining PLASMA gets from pairwise pivoting
        let g = TaskGraph::build_incpiv(500, 500, 100);
        for k in 1..5 {
            assert_eq!(g.dep_count(g.panel_finish(k)), 1);
        }
        // compare: CALU's ComputeU fan-in is whole-column
        let calu = TaskGraph::build(500, 500, 100);
        let u21 = calu
            .ids()
            .find(|&t| matches!(calu.kind(t), TaskKind::ComputeU { k: 2, .. }))
            .unwrap();
        assert!(calu.dep_count(u21) > 1);
    }

    #[test]
    fn incpiv_update_chain_depth_exceeds_calu() {
        use crate::critical_path::unit_critical_path;
        let calu = unit_critical_path(&TaskGraph::build(800, 800, 100));
        let incpiv = unit_critical_path(&TaskGraph::build_incpiv(800, 800, 100));
        // incpiv's serial SSSSM chains make its unit-depth larger even
        // though its panel is pipelined
        assert!(incpiv.length > 0.0 && calu.length > 0.0);
    }

    #[test]
    fn cholesky_dag_shape() {
        let g = TaskGraph::build_cholesky(400, 100); // 4x4 tiles, lower
        assert_eq!(g.variant(), DagVariant::TileCholesky);
        let (p, l, u, s) = g.counts_by_kind();
        assert_eq!(p, 4, "one POTRF per panel");
        assert_eq!(l, 6, "TRSMs: 3+2+1");
        assert_eq!(u, 0, "no U tasks in Cholesky");
        // updates over the lower triangle: k=0: 6, k=1: 3, k=2: 1
        assert_eq!(s, 10);
        // POTRF(k+1) depends on Update(k, k+1, k+1) only — no barrier
        for k in 1..4 {
            assert_eq!(g.dep_count(g.panel_finish(k)), 1);
        }
        // updates write only the lower triangle
        for t in g.ids() {
            if let TaskKind::Update { i, j, .. } = g.kind(t) {
                assert!(j <= i);
            }
        }
    }

    #[test]
    fn all_variants_preserve_dep_count_invariant() {
        for g in [
            TaskGraph::build_gepp(600, 500, 100),
            TaskGraph::build_incpiv(600, 500, 100),
            TaskGraph::build_cholesky(500, 100),
        ] {
            let mut incoming = vec![0u32; g.len()];
            for t in g.ids() {
                for &s in g.successors(t) {
                    incoming[s.idx()] += 1;
                }
            }
            for t in g.ids() {
                assert_eq!(incoming[t.idx()], g.dep_count(t));
            }
        }
    }
}
