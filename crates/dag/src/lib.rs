//! The CALU task dependency graph (§2–3, Figures 2 and 3 of the paper).
//!
//! The input matrix is partitioned into `b × b` tiles; the computation on
//! each tile is a task. The paper distinguishes four task kinds:
//!
//! * **P** — participates in the TSLU preprocessing of a panel. We model
//!   P at its natural granularity: one *leaf* per block row of the panel
//!   (local GEPP producing a pivot candidate) plus the *binary reduction
//!   tree* that merges candidates, ending in a *finish* task that applies
//!   the winning pivots and factors the diagonal tile.
//! * **L** — computes one tile of the panel's L factor (`A·U_KK⁻¹`).
//! * **U** — applies the panel's row swaps to one trailing column and
//!   computes its U tile (`L_KK⁻¹·A`).
//! * **S** — updates one trailing tile (`A −= L·U`), the BLAS-3 bulk.
//!
//! [`TaskGraph::build`] constructs the full DAG for an `m × n` matrix;
//! tasks are stored in a flat arena with CSR successor lists, and the
//! construction order is a topological order (every dependency precedes
//! its dependents), which the schedulers and the simulator exploit.

pub mod critical_path;
pub mod dot;
pub mod graph;
pub mod task;

pub use critical_path::{critical_path, CriticalPath};
pub use graph::{DagVariant, TaskGraph};
pub use task::{PaperKind, TaskId, TaskKind};
