//! Graphviz (DOT) export of the task graph — regenerates Figure 3.
//!
//! Tasks are colored by paper kind; the critical path of the static
//! section is drawn with red edges and the critical path of the dynamic
//! section with green edges, matching the figure.

use crate::critical_path::critical_path;
use crate::graph::TaskGraph;
use crate::task::{PaperKind, TaskId};
use std::collections::HashSet;
use std::fmt::Write as _;

/// Render the DAG as DOT. `nstatic` is the panel count of the static
/// section (tasks writing columns `< nstatic` are static); pass
/// `g.num_panels()` for a fully static rendering.
pub fn to_dot(g: &TaskGraph, nstatic: usize) -> String {
    let is_static = |t: TaskId| g.kind(t).writes_col() < nstatic;

    let static_cp = critical_path(g, is_static, |_| 1.0);
    let dynamic_cp = critical_path(g, |t| !is_static(t), |_| 1.0);
    let path_edges = |cp: &crate::critical_path::CriticalPath| -> HashSet<(u32, u32)> {
        cp.tasks.windows(2).map(|w| (w[0].0, w[1].0)).collect()
    };
    let red = path_edges(&static_cp);
    let green = path_edges(&dynamic_cp);

    let mut out = String::new();
    out.push_str("digraph calu {\n  rankdir=TB;\n  node [style=filled, fontname=\"monospace\"];\n");
    for t in g.ids() {
        let kind = g.kind(t);
        let color = match kind.paper_kind() {
            PaperKind::P => "lightsalmon",
            PaperKind::L => "khaki",
            PaperKind::U => "lightblue",
            PaperKind::S => "palegreen",
        };
        let shape = if is_static(t) { "box" } else { "ellipse" };
        let _ = writeln!(
            out,
            "  t{} [label=\"{}\", fillcolor={}, shape={}];",
            t.0, kind, color, shape
        );
    }
    for t in g.ids() {
        for &s in g.successors(t) {
            let attr = if red.contains(&(t.0, s.0)) {
                " [color=red, penwidth=2.0]"
            } else if green.contains(&(t.0, s.0)) {
                " [color=green, penwidth=2.0]"
            } else {
                ""
            };
            let _ = writeln!(out, "  t{} -> t{}{};", t.0, s.0, attr);
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_contains_all_tasks_and_edges() {
        let g = TaskGraph::build(400, 400, 100);
        let dot = to_dot(&g, 3);
        assert!(dot.starts_with("digraph"));
        // every task declared
        for t in g.ids() {
            assert!(dot.contains(&format!("t{} [", t.0)));
        }
        // edges counted
        let arrow_count = dot.matches(" -> ").count();
        assert_eq!(arrow_count, g.num_edges());
    }

    #[test]
    fn both_critical_paths_highlighted() {
        let g = TaskGraph::build(400, 400, 100);
        let dot = to_dot(&g, 3);
        assert!(dot.contains("color=red"), "static critical path missing");
        assert!(dot.contains("color=green"), "dynamic critical path missing");
    }

    #[test]
    fn fully_static_has_no_green() {
        let g = TaskGraph::build(400, 400, 100);
        let dot = to_dot(&g, g.num_panels());
        assert!(dot.contains("color=red"));
        assert!(!dot.contains("color=green"));
    }

    #[test]
    fn shapes_split_static_dynamic() {
        let g = TaskGraph::build(400, 400, 100);
        let dot = to_dot(&g, 2);
        assert!(dot.contains("shape=box"));
        assert!(dot.contains("shape=ellipse"));
    }
}
