//! Task identifiers and kinds.

use std::fmt;

/// Index of a task in its [`crate::TaskGraph`] arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaskId(pub u32);

impl TaskId {
    /// The arena index as `usize`.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// Fine-grained task kinds. Indices `k`, `i`, `j` are *tile* coordinates
/// (panel, tile row, tile column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TaskKind {
    /// TSLU leaf of panel `k` on block row `i`: GEPP of the candidate
    /// rows held by tile `(i, k)`.
    PanelLeaf {
        /// Panel index.
        k: u32,
        /// Block row.
        i: u32,
    },
    /// TSLU reduction node of panel `k`: merges two candidate sets at
    /// `level` (1 = just above the leaves), position `idx`.
    PanelCombine {
        /// Panel index.
        k: u32,
        /// Tree level.
        level: u32,
        /// Position within the level.
        idx: u32,
    },
    /// End of TSLU for panel `k`: swap the winning pivot rows into the
    /// diagonal block and factor it (LU with no pivoting).
    PanelFinish {
        /// Panel index.
        k: u32,
    },
    /// Compute L tile `(i, k)` of panel `k` by a right triangular solve.
    ComputeL {
        /// Panel index.
        k: u32,
        /// Block row.
        i: u32,
    },
    /// Apply panel `k`'s row swaps to column `j` and compute U tile
    /// `(k, j)` by a left triangular solve.
    ComputeU {
        /// Panel index.
        k: u32,
        /// Tile column.
        j: u32,
    },
    /// Trailing update of tile `(i, j)` by panel `k` (gemm).
    Update {
        /// Panel index.
        k: u32,
        /// Tile row.
        i: u32,
        /// Tile column.
        j: u32,
    },
}

/// The paper's coarse task taxonomy (P, L, U, S).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PaperKind {
    /// Panel preprocessing (TSLU reduction).
    P,
    /// Panel L computation.
    L,
    /// Block-row U computation.
    U,
    /// Trailing-matrix update.
    S,
}

impl TaskKind {
    /// Map to the paper's P/L/U/S taxonomy.
    pub fn paper_kind(&self) -> PaperKind {
        match self {
            TaskKind::PanelLeaf { .. }
            | TaskKind::PanelCombine { .. }
            | TaskKind::PanelFinish { .. } => PaperKind::P,
            TaskKind::ComputeL { .. } => PaperKind::L,
            TaskKind::ComputeU { .. } => PaperKind::U,
            TaskKind::Update { .. } => PaperKind::S,
        }
    }

    /// Panel (elimination step) this task belongs to.
    pub fn panel(&self) -> usize {
        match *self {
            TaskKind::PanelLeaf { k, .. }
            | TaskKind::PanelCombine { k, .. }
            | TaskKind::PanelFinish { k }
            | TaskKind::ComputeL { k, .. }
            | TaskKind::ComputeU { k, .. }
            | TaskKind::Update { k, .. } => k as usize,
        }
    }

    /// Tile column whose data this task writes — the coordinate the
    /// hybrid scheduler uses to split the DAG ("tasks that operate on
    /// blocks belonging to the first Nstatic panels are scheduled
    /// statically", §3).
    pub fn writes_col(&self) -> usize {
        match *self {
            TaskKind::PanelLeaf { k, .. }
            | TaskKind::PanelCombine { k, .. }
            | TaskKind::PanelFinish { k }
            | TaskKind::ComputeL { k, .. } => k as usize,
            TaskKind::ComputeU { j, .. } | TaskKind::Update { j, .. } => j as usize,
        }
    }

    /// Representative tile `(row, col)` this task writes, used for
    /// ownership mapping and NUMA home lookup.
    pub fn writes_tile(&self) -> (usize, usize) {
        match *self {
            TaskKind::PanelLeaf { k, i } => (i as usize, k as usize),
            // reduction nodes are placed with the diagonal block's owner
            TaskKind::PanelCombine { k, .. } | TaskKind::PanelFinish { k } => {
                (k as usize, k as usize)
            }
            TaskKind::ComputeL { k, i } => (i as usize, k as usize),
            TaskKind::ComputeU { k, j } => (k as usize, j as usize),
            TaskKind::Update { i, j, .. } => (i as usize, j as usize),
        }
    }
}

impl fmt::Display for TaskKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            TaskKind::PanelLeaf { k, i } => write!(f, "P{k}.leaf[{i}]"),
            TaskKind::PanelCombine { k, level, idx } => write!(f, "P{k}.comb[{level},{idx}]"),
            TaskKind::PanelFinish { k } => write!(f, "P{k}.fin"),
            TaskKind::ComputeL { k, i } => write!(f, "L[{i},{k}]"),
            TaskKind::ComputeU { k, j } => write!(f, "U[{k},{j}]"),
            TaskKind::Update { k, i, j } => write!(f, "S{k}[{i},{j}]"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_kind_mapping() {
        assert_eq!(
            TaskKind::PanelLeaf { k: 0, i: 1 }.paper_kind(),
            PaperKind::P
        );
        assert_eq!(
            TaskKind::PanelCombine {
                k: 0,
                level: 1,
                idx: 0
            }
            .paper_kind(),
            PaperKind::P
        );
        assert_eq!(TaskKind::PanelFinish { k: 2 }.paper_kind(), PaperKind::P);
        assert_eq!(TaskKind::ComputeL { k: 0, i: 1 }.paper_kind(), PaperKind::L);
        assert_eq!(TaskKind::ComputeU { k: 0, j: 1 }.paper_kind(), PaperKind::U);
        assert_eq!(
            TaskKind::Update { k: 0, i: 1, j: 1 }.paper_kind(),
            PaperKind::S
        );
    }

    #[test]
    fn writes_col_splits_by_panel_membership() {
        // panel-side tasks write their own panel column
        assert_eq!(TaskKind::ComputeL { k: 3, i: 7 }.writes_col(), 3);
        assert_eq!(TaskKind::PanelFinish { k: 3 }.writes_col(), 3);
        // trailing tasks write the column they update
        assert_eq!(TaskKind::ComputeU { k: 3, j: 9 }.writes_col(), 9);
        assert_eq!(TaskKind::Update { k: 3, i: 5, j: 9 }.writes_col(), 9);
    }

    #[test]
    fn writes_tile_targets() {
        assert_eq!(TaskKind::Update { k: 0, i: 4, j: 6 }.writes_tile(), (4, 6));
        assert_eq!(TaskKind::PanelLeaf { k: 2, i: 5 }.writes_tile(), (5, 2));
        assert_eq!(TaskKind::PanelFinish { k: 2 }.writes_tile(), (2, 2));
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(TaskKind::Update { k: 1, i: 2, j: 3 }.to_string(), "S1[2,3]");
        assert_eq!(TaskKind::PanelFinish { k: 0 }.to_string(), "P0.fin");
    }
}
