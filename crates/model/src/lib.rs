//! The paper's §6 performance model and §7 projections.
//!
//! Theorem 1 bounds the static fraction `f_s` that still allows ideal
//! completion time in the presence of per-core excess work `δ_i`:
//!
//! ```text
//! f_s ≤ 1 − (δ_max − δ_avg) / T_p
//! ```
//!
//! with `T_p = T_1 / p` the ideal parallel time. The extended model adds
//! the critical-path, migration and scheduling-overhead terms to the
//! denominator, and the exascale projection of §7 scales the noise terms
//! with the core count.

pub mod projection;
pub mod theorem1;

pub use projection::{dynamic_fraction_projection, ProjectionRow};
pub use theorem1::{max_static_fraction, max_static_fraction_ext, NoiseStats, Overheads};
