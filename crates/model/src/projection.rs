//! §7: projecting the dynamic-fraction lower bound to exascale nodes.
//!
//! "Keeping the work per core constant, the term `(δ_max − δ_avg)` can
//! increase in the presence of noise amplification. … we project that the
//! lower-bounds for percentage dynamic … will have to increase for use on
//! future high-performance clusters."

use crate::theorem1::{max_static_fraction, NoiseStats};

/// One row of the projection table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProjectionRow {
    /// Cores per node.
    pub cores: usize,
    /// Modeled noise skew `δ_max − δ_avg` (seconds).
    pub noise_skew: f64,
    /// Maximum static fraction from Theorem 1.
    pub max_static: f64,
    /// Implied minimum dynamic percentage (`(1 − f_s)·100`).
    pub min_dynamic_pct: f64,
}

/// Project the minimum dynamic fraction for node sizes `cores`, under
/// weak scaling (work per core constant at `work_per_core` seconds) and a
/// noise skew that grows with the core count as
/// `base_skew · (p / p0)^amplification` (noise amplification, \[14\] in the
/// paper). `p0` is the first entry's core count.
pub fn dynamic_fraction_projection(
    cores: &[usize],
    work_per_core: f64,
    base_skew: f64,
    amplification: f64,
) -> Vec<ProjectionRow> {
    assert!(!cores.is_empty(), "need at least one node size");
    let p0 = cores[0] as f64;
    cores
        .iter()
        .map(|&p| {
            let skew = base_skew * ((p as f64) / p0).powf(amplification);
            let noise = NoiseStats {
                delta_max: skew,
                delta_avg: 0.0,
            };
            // weak scaling: T1 = p * work_per_core, so Tp = work_per_core
            let fs = max_static_fraction(p as f64 * work_per_core, p, noise);
            ProjectionRow {
                cores: p,
                noise_skew: skew,
                max_static: fs,
                min_dynamic_pct: (1.0 - fs) * 100.0,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dynamic_need_grows_with_cores() {
        let rows = dynamic_fraction_projection(&[16, 48, 192, 1024], 1.0, 0.01, 0.5);
        for w in rows.windows(2) {
            assert!(
                w[1].min_dynamic_pct >= w[0].min_dynamic_pct,
                "projection must be monotone"
            );
        }
        assert!(rows[0].min_dynamic_pct < rows[3].min_dynamic_pct);
    }

    #[test]
    fn no_amplification_is_flat() {
        let rows = dynamic_fraction_projection(&[16, 1024], 1.0, 0.05, 0.0);
        assert!((rows[0].min_dynamic_pct - rows[1].min_dynamic_pct).abs() < 1e-12);
    }

    #[test]
    fn projections_stay_in_range() {
        let rows = dynamic_fraction_projection(&[16, 100000], 0.1, 0.05, 1.0);
        for r in rows {
            assert!((0.0..=100.0).contains(&r.min_dynamic_pct));
            assert!((0.0..=1.0).contains(&r.max_static));
        }
    }
}
