//! Theorem 1 and its extensions (§6).

/// Summary statistics of the per-core excess work `δ_i`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseStats {
    /// Largest per-core excess work (seconds).
    pub delta_max: f64,
    /// Mean per-core excess work (seconds).
    pub delta_avg: f64,
}

impl NoiseStats {
    /// Compute the statistics from per-core excess-work samples.
    pub fn from_samples(deltas: &[f64]) -> NoiseStats {
        assert!(!deltas.is_empty(), "need at least one core");
        let delta_max = deltas.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let delta_avg = deltas.iter().sum::<f64>() / deltas.len() as f64;
        NoiseStats {
            delta_max,
            delta_avg,
        }
    }
}

/// Additional per-run costs the extended model folds into the effective
/// parallel time (§6: "these additional relevant costs can be captured by
/// adding a single term … to the denominator").
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Overheads {
    /// Communication on the critical path, `T_criticalPath`.
    pub critical_path: f64,
    /// Data-migration cost, `T_migration`.
    pub migration: f64,
    /// Remaining scheduling overheads (dequeues, …), `T_overhead`.
    pub other: f64,
}

/// Theorem 1: the largest static fraction `f_s` for which the static
/// schedule can still finish in ideal time, given serial time `t1`,
/// `p` cores, and noise statistics. Clamped into `[0, 1]`.
pub fn max_static_fraction(t1: f64, p: usize, noise: NoiseStats) -> f64 {
    max_static_fraction_ext(t1, p, noise, Overheads::default())
}

/// Extended Theorem 1 with the denominator `T_1/p + T_cp + T_mig + T_ovh`.
pub fn max_static_fraction_ext(t1: f64, p: usize, noise: NoiseStats, ovh: Overheads) -> f64 {
    assert!(p > 0, "need at least one core");
    assert!(t1 > 0.0, "serial time must be positive");
    let tp = t1 / p as f64 + ovh.critical_path + ovh.migration + ovh.other;
    let fs = 1.0 - (noise.delta_max - noise.delta_avg) / tp;
    fs.clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_noise_allows_fully_static() {
        let noise = NoiseStats {
            delta_max: 0.0,
            delta_avg: 0.0,
        };
        assert_eq!(max_static_fraction(100.0, 16, noise), 1.0);
    }

    #[test]
    fn uniform_noise_allows_fully_static() {
        // if every core suffers the same delta, no rebalancing is needed
        let noise = NoiseStats::from_samples(&[0.5; 8]);
        assert_eq!(max_static_fraction(80.0, 8, noise), 1.0);
    }

    #[test]
    fn skewed_noise_requires_dynamic_work() {
        // one slow core: delta_max - delta_avg = 0.875; Tp = 10
        let mut deltas = vec![0.0; 8];
        deltas[0] = 1.0;
        let noise = NoiseStats::from_samples(&deltas);
        let fs = max_static_fraction(80.0, 8, noise);
        assert!((fs - (1.0 - 0.875 / 10.0)).abs() < 1e-12);
        assert!(fs < 1.0);
    }

    #[test]
    fn heavy_noise_clamps_to_zero() {
        let noise = NoiseStats {
            delta_max: 100.0,
            delta_avg: 0.0,
        };
        assert_eq!(max_static_fraction(10.0, 10, noise), 0.0);
    }

    #[test]
    fn larger_matrices_allow_more_static() {
        // §6: "increasing matrix size allows us to increase the maximum
        // static fraction"
        let noise = NoiseStats {
            delta_max: 0.2,
            delta_avg: 0.05,
        };
        let small = max_static_fraction(10.0, 16, noise);
        let large = max_static_fraction(1000.0, 16, noise);
        assert!(large > small);
    }

    #[test]
    fn more_cores_require_more_dynamic() {
        // keeping T1 constant, growing p shrinks Tp and thus fs
        let noise = NoiseStats {
            delta_max: 0.2,
            delta_avg: 0.05,
        };
        let few = max_static_fraction(100.0, 8, noise);
        let many = max_static_fraction(100.0, 128, noise);
        assert!(many < few);
    }

    #[test]
    fn overhead_terms_raise_the_bound() {
        // a larger denominator tolerates more noise before rebalancing
        let noise = NoiseStats {
            delta_max: 1.0,
            delta_avg: 0.2,
        };
        let plain = max_static_fraction(100.0, 32, noise);
        let ext = max_static_fraction_ext(
            100.0,
            32,
            noise,
            Overheads {
                critical_path: 2.0,
                migration: 1.0,
                other: 0.5,
            },
        );
        assert!(ext > plain);
    }

    #[test]
    fn stats_from_samples() {
        let s = NoiseStats::from_samples(&[1.0, 2.0, 3.0]);
        assert_eq!(s.delta_max, 3.0);
        assert_eq!(s.delta_avg, 2.0);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn rejects_zero_cores() {
        max_static_fraction(
            1.0,
            0,
            NoiseStats {
                delta_max: 0.0,
                delta_avg: 0.0,
            },
        );
    }
}
