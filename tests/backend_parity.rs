//! Backend parity: the two execution backends are interchangeable
//! behind the `Backend` trait and agree with the numerical oracle.
//!
//! * `ThreadedBackend` must reproduce `calu_simple`'s solutions (same
//!   algorithm, different executor) with tiny residuals across
//!   (n, b, dratio, layout) combinations;
//! * `SimulatedBackend` must execute every DAG task exactly once under
//!   every scheduler kind — same totals the threaded executor reports.

use calu::core::calu_simple;
use calu::dag::TaskGraph;
use calu::matrix::{gen, ops, Layout, ProcessGrid};
use calu::sched::{CpuTopology, SchedulerKind};
use calu::sim::{MachineConfig, NoiseConfig};
use calu::{
    AdaptiveController, AdaptivePolicy, Algorithm, Backend, ContentionStats, MatrixSource,
    Observation, QueueDiscipline, SimulatedBackend, Solver, ThreadedBackend,
};

#[test]
fn threaded_matches_the_simple_oracle() {
    for (n, b, dratio, layout) in [
        (48usize, 8usize, 0.0f64, Layout::BlockCyclic),
        (64, 16, 0.1, Layout::TwoLevelBlock),
        (72, 12, 0.5, Layout::ColumnMajor),
        (60, 10, 1.0, Layout::BlockCyclic),
    ] {
        let a = gen::uniform(n, n, 7 + n as u64);
        let rhs = gen::uniform(n, 1, 99);
        let report = Solver::new(a.clone())
            .tile(b)
            .threads(2)
            .dratio(dratio)
            .layout(layout)
            .backend(ThreadedBackend)
            .run()
            .unwrap();
        assert!(
            report.residual.unwrap() < 1e-10,
            "residual {} for n={n} b={b} dratio={dratio} {layout}",
            report.residual.unwrap()
        );
        // the oracle and the threaded executor solve the same system
        let x_solver = report.factorization.unwrap().solve(&rhs);
        let x_oracle = calu_simple(&a, b, 2).solve(&rhs);
        let e1 = calu::core::verify::backward_error(&a, &x_solver, &rhs);
        let e2 = calu::core::verify::backward_error(&a, &x_oracle, &rhs);
        assert!(e1 < 1e-10 && e2 < 1e-10, "backward errors {e1} / {e2}");
    }
}

#[test]
fn simulated_executes_every_task_exactly_once_per_scheduler() {
    let mach = MachineConfig::intel_xeon_16(NoiseConfig::off());
    let (n, b) = (1000usize, 100usize);
    let grid = ProcessGrid::square_for(mach.cores()).unwrap();
    let expected = TaskGraph::build_calu(n, n, b, grid.pr()).len();
    for sched in [
        SchedulerKind::Static,
        SchedulerKind::Dynamic,
        SchedulerKind::Hybrid { dratio: 0.2 },
        SchedulerKind::WorkStealing { seed: 1 },
    ] {
        let r = Solver::new(MatrixSource::shape(n, n))
            .tile(b)
            .scheduler(sched)
            .backend(SimulatedBackend::new(mach.clone()))
            .run()
            .unwrap();
        assert_eq!(r.tasks, expected, "{sched}: task total");
        assert_eq!(
            r.schedule.total_tasks() as usize,
            expected,
            "{sched}: per-core tasks must sum to the DAG size"
        );
        let q = r.schedule.queue_sources();
        assert_eq!(
            (q.local + q.global + q.stolen) as usize,
            expected,
            "{sched}: every task is attributed to exactly one queue source"
        );
    }
}

#[test]
fn global_and_sharded_disciplines_factor_bitwise_identically() {
    // The queue discipline reorders *when* dynamic tasks run, never
    // *what* they compute: every kernel's inputs are fixed by the DAG,
    // so Global and Sharded must agree to the last bit — packed LU,
    // pivot sequence, and residual alike.
    for (n, b, threads, dratio) in [
        (64usize, 8usize, 4usize, 0.5f64),
        (72, 12, 3, 1.0),
        (60, 10, 2, 0.25),
    ] {
        let a = gen::uniform(n, n, 21 + n as u64);
        let run = |queue: QueueDiscipline| {
            Solver::new(a.clone())
                .tile(b)
                .threads(threads)
                .dratio(dratio)
                .queue_discipline(queue)
                .backend(ThreadedBackend)
                .run()
                .unwrap()
        };
        let g = run(QueueDiscipline::Global);
        let s = run(QueueDiscipline::sharded());
        let ctx = format!("n={n} b={b} threads={threads} dratio={dratio}");

        let (fg, fs) = (
            g.factorization.as_ref().unwrap(),
            s.factorization.as_ref().unwrap(),
        );
        assert_eq!(fg.lu.as_slice(), fs.lu.as_slice(), "packed LU bits, {ctx}");
        assert_eq!(fg.perm.pivots(), fs.perm.pivots(), "pivot rows, {ctx}");
        assert_eq!(
            g.residual.unwrap().to_bits(),
            s.residual.unwrap().to_bits(),
            "residual bits, {ctx}"
        );

        // Steal accounting: the global discipline never touches the
        // steal path, so its counters stay exactly zero …
        assert_eq!(g.schedule.contention(), ContentionStats::default(), "{ctx}");
        for (tid, t) in g.schedule.threads.iter().enumerate() {
            assert_eq!(
                (t.stolen_pops, t.failed_steals),
                (0, 0),
                "thread {tid} stole under Global, {ctx}"
            );
        }
        let (qg, qs) = (g.schedule.queue_sources(), s.schedule.queue_sources());
        assert_eq!(qg.stolen, 0, "{ctx}");
        // … and under either discipline every task is attributed to
        // exactly one dequeue source.
        assert_eq!(qg.local + qg.global, g.tasks as u64, "{ctx}");
        assert_eq!(
            qs.local + qs.global + qs.stolen,
            s.tasks as u64,
            "sharded attribution, {ctx}"
        );
    }
}

#[test]
fn lockfree_factors_bitwise_identically_across_the_seeded_sweep() {
    // The lock-free deques reorder *when* dynamic tasks run — never
    // what they compute: for every (threads, dratio) cell, LockFree
    // must agree with Global and with the Sharded parity oracle to the
    // last bit. dratio = 0 has no dynamic section, where an explicit
    // stealing discipline is a configuration error instead.
    let n = 64usize;
    let b = 8usize;
    for threads in [1usize, 2, 4] {
        for dratio in [0.0f64, 0.3, 0.7] {
            let a = gen::uniform(n, n, 1000 + threads as u64 * 10 + (dratio * 10.0) as u64);
            let run = |queue: QueueDiscipline| {
                Solver::new(a.clone())
                    .tile(b)
                    .threads(threads)
                    .dratio(dratio)
                    .queue_discipline(queue)
                    .backend(ThreadedBackend)
                    .run()
            };
            let ctx = format!("threads={threads} dratio={dratio}");
            if dratio == 0.0 {
                for queue in [QueueDiscipline::lock_free(), QueueDiscipline::sharded()] {
                    assert!(
                        run(queue).is_err(),
                        "{queue} without a dynamic section must be rejected, {ctx}"
                    );
                }
                continue;
            }
            let g = run(QueueDiscipline::Global).unwrap();
            let s = run(QueueDiscipline::sharded()).unwrap();
            let l = run(QueueDiscipline::lock_free()).unwrap();
            let fg = g.factorization.as_ref().unwrap();
            for (name, r) in [("sharded", &s), ("lockfree", &l)] {
                let f = r.factorization.as_ref().unwrap();
                assert_eq!(
                    fg.lu.as_slice(),
                    f.lu.as_slice(),
                    "packed LU bits vs {name}, {ctx}"
                );
                assert_eq!(
                    fg.perm.pivots(),
                    f.perm.pivots(),
                    "pivot rows vs {name}, {ctx}"
                );
                assert_eq!(
                    g.residual.unwrap().to_bits(),
                    r.residual.unwrap().to_bits(),
                    "residual bits vs {name}, {ctx}"
                );
            }
            // attribution: every task reaches exactly one queue source,
            // single-threaded runs never steal, and only the tiered
            // lock-free sweep ever classifies a steal as remote
            for r in [&g, &s, &l] {
                let q = r.schedule.queue_sources();
                assert_eq!(q.local + q.global + q.stolen, r.tasks as u64, "{ctx}");
            }
            if threads == 1 {
                assert_eq!(l.schedule.queue_sources().stolen, 0, "{ctx}");
            }
            let sl = s.schedule.steal_locality();
            assert_eq!(sl.remote, 0, "flat sweep never classifies remote, {ctx}");
            let ll = l.schedule.steal_locality();
            assert_eq!(
                ll.local + ll.remote,
                l.schedule.queue_sources().stolen,
                "steal locality splits the steal total, {ctx}"
            );
        }
    }
}

#[test]
fn backends_swap_behind_the_trait_in_one_loop() {
    // the acceptance one-liner: same workload, N backends × M schedulers,
    // one loop, one API
    let a = gen::uniform(64, 64, 11);
    type Factory = Box<dyn Fn() -> Box<dyn Backend>>;
    let backends: Vec<Factory> = vec![
        Box::new(|| Box::new(ThreadedBackend)),
        Box::new(|| {
            Box::new(SimulatedBackend::new(MachineConfig::intel_xeon_16(
                NoiseConfig::off(),
            )))
        }),
    ];
    for make in &backends {
        for sched in [SchedulerKind::Static, SchedulerKind::Hybrid { dratio: 0.1 }] {
            let r = Solver::new(a.clone())
                .tile(16)
                .scheduler(sched)
                .backend(make())
                .run()
                .unwrap();
            assert!(r.makespan > 0.0, "{} {sched}", r.backend);
            assert!(r.schedule.total_tasks() > 0, "{} {sched}", r.backend);
            if r.backend == "threaded" {
                assert!(r.residual.unwrap() < 1e-12);
            }
        }
    }
}

#[test]
fn report_fields_are_backend_consistent() {
    let a = gen::uniform(64, 64, 13);
    let threaded = Solver::new(a.clone()).tile(16).threads(4).run().unwrap();
    let simulated = Solver::new(MatrixSource::shape(64, 64))
        .tile(16)
        .backend(SimulatedBackend::new(MachineConfig::intel_xeon_16(
            NoiseConfig::off(),
        )))
        .run()
        .unwrap();
    for r in [&threaded, &simulated] {
        assert_eq!(r.dims, (64, 64));
        assert_eq!(r.b, 16);
        assert!(r.makespan > 0.0);
        assert!(r.gflops() > 0.0);
        assert_eq!(r.schedule.threads.len(), r.threads);
        assert!(r.utilization() > 0.0 && r.utilization() <= 1.0);
    }
    // solution checks only exist where real numbers were produced
    assert!(threaded.residual.is_some() && threaded.factorization.is_some());
    assert!(simulated.residual.is_none() && simulated.factorization.is_none());
}

#[test]
fn threaded_batch_items_factor_bitwise_identically_to_solo_runs() {
    // The acceptance sweep: a mixed batch (co-scheduled small items AND
    // co-operative large ones) where every item must match the solo
    // `run` of the same source to the last bit — same pivots, same
    // packed LU, same residual bits. The pool changes *when* tasks run,
    // never what they compute.
    let sources: Vec<MatrixSource> = [(48usize, 101u64), (450, 102), (64, 103), (96, 104)]
        .iter()
        .map(|&(n, seed)| MatrixSource::uniform(n, seed))
        .collect();
    for queue in [QueueDiscipline::Global, QueueDiscipline::lock_free()] {
        let solver = |src: MatrixSource| {
            Solver::new(src)
                .tile(16)
                .threads(4)
                .dratio(0.5)
                .queue_discipline(queue)
                .batch_small_cutoff(100)
        };
        let batch = solver(MatrixSource::shape(8, 8)).batch(&sources).unwrap();
        assert_eq!(batch.backend, "threaded");
        assert_eq!(batch.len(), 4);
        assert_eq!(batch.threads, 4);
        assert_eq!(batch.co_scheduled, 3, "items ≤ 100 are co-scheduled");
        assert!(batch.wall_secs > 0.0 && batch.items_per_sec() > 0.0);
        assert!(batch.aggregate_gflops() > 0.0);
        for (src, item) in sources.iter().zip(&batch.items) {
            let solo = solver(src.clone()).run().unwrap();
            let (fb, fs) = (
                item.factorization.as_ref().unwrap(),
                solo.factorization.as_ref().unwrap(),
            );
            let ctx = format!("n={} queue={queue}", src.dims().0);
            assert_eq!(fb.lu.as_slice(), fs.lu.as_slice(), "packed LU bits, {ctx}");
            assert_eq!(fb.perm.pivots(), fs.perm.pivots(), "pivot rows, {ctx}");
            assert_eq!(
                item.residual.unwrap().to_bits(),
                solo.residual.unwrap().to_bits(),
                "residual bits, {ctx}"
            );
            // attribution holds inside the batch too: every task of the
            // item reaches exactly one queue source
            let q = item.schedule.queue_sources();
            assert_eq!(q.local + q.global + q.stolen, item.tasks as u64, "{ctx}");
            assert_eq!(item.tasks, solo.tasks, "{ctx}");
        }
    }
}

#[test]
fn one_item_batch_matches_the_solo_run_exactly() {
    let src = MatrixSource::uniform(72, 7);
    let solver = Solver::new(src.clone()).tile(12).threads(2).dratio(0.3);
    let batch = solver.batch(std::slice::from_ref(&src)).unwrap();
    let solo = solver.run().unwrap();
    assert_eq!(batch.len(), 1);
    let (fb, fs) = (
        batch.items[0].factorization.as_ref().unwrap(),
        solo.factorization.as_ref().unwrap(),
    );
    assert_eq!(fb.lu.as_slice(), fs.lu.as_slice());
    assert_eq!(fb.perm.pivots(), fs.perm.pivots());
    assert_eq!(
        batch.items[0].residual.unwrap().to_bits(),
        solo.residual.unwrap().to_bits()
    );
}

#[test]
fn batch_rejects_bad_inputs_like_run_does() {
    let solver = Solver::new(MatrixSource::shape(64, 64)).tile(16).threads(4);
    // empty batches are a config error, not a zero-item report
    let err = solver.batch(&[]).unwrap_err();
    assert!(
        matches!(err, calu::Error::Config(ref m) if m.contains("at least one")),
        "{err}"
    );
    // shape-only items are rejected by the threaded pool with the same
    // message as a solo run
    let err = solver.batch(&[MatrixSource::shape(32, 32)]).unwrap_err();
    assert!(
        matches!(err, calu::Error::Config(ref m) if m.contains("DenseMatrix")),
        "{err}"
    );
    // batch knobs are validated through the same single path
    let err = Solver::new(MatrixSource::shape(64, 64))
        .threads(2)
        .batch_threads_per_item(8)
        .batch(&[MatrixSource::uniform(32, 1)])
        .unwrap_err();
    assert!(
        matches!(err, calu::Error::Config(ref m) if m.contains("exceeds")),
        "{err}"
    );
}

#[test]
fn simulated_batch_models_the_same_semantics() {
    let mach = MachineConfig::intel_xeon_16(NoiseConfig::off());
    let sources: Vec<MatrixSource> = vec![
        MatrixSource::shape(300, 300),
        MatrixSource::shape(1000, 1000),
        MatrixSource::shape(200, 200),
    ];
    let solver = Solver::new(MatrixSource::shape(8, 8))
        .tile(100)
        .backend(SimulatedBackend::new(mach.clone()));
    let batch = solver.batch(&sources).unwrap();
    assert_eq!(batch.co_scheduled, 2, "items ≤ 384 co-schedule");
    // co-scheduled items ran on a 1-core group (default k = 1), large
    // ones on the whole machine
    assert_eq!(batch.items[0].threads, 1);
    assert_eq!(batch.items[1].threads, 16);
    assert_eq!(batch.items[2].threads, 1);
    // with co-scheduling disabled, every item's makespan matches its
    // solo simulation exactly and the wall is their sum (deterministic
    // discrete-event model)
    let no_co = Solver::new(MatrixSource::shape(8, 8))
        .tile(100)
        .batch_small_cutoff(0)
        .backend(SimulatedBackend::new(mach.clone()));
    let batch = no_co.batch(&sources).unwrap();
    assert_eq!(batch.co_scheduled, 0);
    let mut sum = 0.0;
    for (src, item) in sources.iter().zip(&batch.items) {
        let solo = Solver::new(src.clone())
            .tile(100)
            .backend(SimulatedBackend::new(mach.clone()))
            .run()
            .unwrap();
        assert_eq!(item.threads, 16);
        assert!(
            (item.makespan - solo.makespan).abs() < 1e-12,
            "deterministic model: batch item == solo sim"
        );
        sum += item.makespan;
    }
    assert!((batch.wall_secs - sum).abs() < 1e-12);
    assert!(batch.items_per_sec() > 0.0);
}

#[test]
fn threaded_cholesky_is_bitwise_stable_and_matches_the_dpotrf_reference() {
    // The kernel-set sweep for Cholesky: across queue disciplines and
    // thread counts the tiled factor must agree to the last bit (the
    // DAG's exclusive-writer rule fixes every tile's summation order),
    // carry an identity permutation and no growth factor, pass the
    // relative residual gate, and agree with the sequential dpotrf
    // reference to roundoff (different tilings sum in different orders,
    // so the reference comparison is elementwise, not bitwise).
    for (n, b, seed) in [(64usize, 16usize, 41u64), (96, 16, 42), (100, 24, 43)] {
        let mut reference = gen::spd_uniform(n, seed);
        let ld = reference.ld();
        assert!(
            calu::kernels::dpotrf_unblocked(n, reference.as_mut_slice(), ld).is_none(),
            "spd_uniform must be numerically SPD, n={n}"
        );
        let run = |queue: QueueDiscipline, threads: usize| {
            Solver::new(MatrixSource::spd_uniform(n, seed))
                .algorithm(Algorithm::Cholesky)
                .tile(b)
                .threads(threads)
                .dratio(0.5)
                .queue_discipline(queue)
                .backend(ThreadedBackend)
                .run()
                .unwrap()
        };
        let base = run(QueueDiscipline::Global, 4);
        let fb = base.factorization.as_ref().unwrap();
        let ctx = format!("n={n} b={b} seed={seed}");
        assert_eq!(base.algorithm, Algorithm::Cholesky, "{ctx}");
        assert!(fb.perm.pivots().is_empty(), "no pivoting, {ctx}");
        assert!(
            base.residual.unwrap() < 1e-13,
            "relative ‖A − LLᵀ‖ residual {} over the gate, {ctx}",
            base.residual.unwrap()
        );
        assert!(
            base.growth_factor.is_none(),
            "growth factor is an LU pivoting figure, {ctx}"
        );
        for i in 0..n {
            for j in 0..=i {
                let (x, y) = (fb.lu.get(i, j), reference.get(i, j));
                assert!(
                    (x - y).abs() < 1e-11,
                    "vs dpotrf at ({i},{j}), {ctx}: {x} vs {y}"
                );
            }
        }
        for queue in [QueueDiscipline::sharded(), QueueDiscipline::lock_free()] {
            for threads in [1usize, 2, 4] {
                let r = run(queue, threads);
                let f = r.factorization.as_ref().unwrap();
                assert_eq!(
                    fb.lu.as_slice(),
                    f.lu.as_slice(),
                    "packed L bits vs {queue} × {threads} threads, {ctx}"
                );
                assert_eq!(
                    base.residual.unwrap().to_bits(),
                    r.residual.unwrap().to_bits(),
                    "residual bits vs {queue} × {threads} threads, {ctx}"
                );
            }
        }
    }
}

#[test]
fn cholesky_residual_gate_holds_across_a_seeded_spd_sweep() {
    for (n, b, threads, seed) in [
        (48usize, 8usize, 2usize, 61u64),
        (64, 16, 3, 62),
        (80, 16, 4, 63),
        (100, 24, 3, 64),
        (128, 32, 4, 65),
    ] {
        let r = Solver::new(MatrixSource::spd_uniform(n, seed))
            .algorithm(Algorithm::Cholesky)
            .tile(b)
            .threads(threads)
            .dratio(0.5)
            .run()
            .unwrap();
        assert!(
            r.residual.unwrap() < 1e-13,
            "residual {} for n={n} b={b} threads={threads}",
            r.residual.unwrap()
        );
        assert!(r.growth_factor.is_none(), "n={n}");
    }
}

#[test]
fn cholesky_plans_validate_their_sources() {
    // squareness and SPD provenance are plan-time errors, not runtime
    // surprises, and the messages say what to do instead
    let err = Solver::new(MatrixSource::uniform_rect(64, 48, 1))
        .algorithm(Algorithm::Cholesky)
        .tile(16)
        .run()
        .unwrap_err();
    assert!(
        matches!(err, calu::Error::Config(ref m) if m.contains("square")),
        "{err}"
    );
    let err = Solver::new(MatrixSource::uniform(64, 1))
        .algorithm(Algorithm::Cholesky)
        .tile(16)
        .run()
        .unwrap_err();
    assert!(
        matches!(err, calu::Error::Config(ref m) if m.contains("SpdUniform")),
        "{err}"
    );
}

#[test]
fn mixed_lu_and_cholesky_batch_routes_both_through_one_pool() {
    // the pooled batch executor dispatches per item by kernel set; a
    // sweep can only mix algorithms per-plan through Backend::run_batch
    // (Solver::batch fixes one algorithm), so build plans by hand
    let lu_solver = Solver::new(MatrixSource::uniform(64, 71))
        .tile(16)
        .threads(3)
        .dratio(0.5);
    let ch_solver = Solver::new(MatrixSource::spd_uniform(64, 72))
        .algorithm(Algorithm::Cholesky)
        .tile(16)
        .threads(3)
        .dratio(0.5);
    let plans = [lu_solver.plan().unwrap(), ch_solver.plan().unwrap()];
    let batch = ThreadedBackend.run_batch(&plans).unwrap();
    assert_eq!(batch.len(), 2);
    let lu_solo = lu_solver.run().unwrap();
    let ch_solo = ch_solver.run().unwrap();
    for (item, solo) in batch.items.iter().zip([&lu_solo, &ch_solo]) {
        assert_eq!(item.algorithm, solo.algorithm);
        assert_eq!(
            item.factorization.as_ref().unwrap().lu.as_slice(),
            solo.factorization.as_ref().unwrap().lu.as_slice(),
            "{} batch item matches its solo run bitwise",
            solo.algorithm
        );
        assert_eq!(
            item.residual.unwrap().to_bits(),
            solo.residual.unwrap().to_bits()
        );
    }
    assert!(batch.items[0].growth_factor.is_some(), "LU reports growth");
    assert!(batch.items[1].growth_factor.is_none(), "Cholesky has none");
}

#[test]
fn simulated_cholesky_task_counts_match_the_threaded_dag() {
    // both backends factor Cholesky through the exact same DAG; pin the
    // per-kind split (POTRF / TRSM / SYRK+GEMM ride the P/L/S kinds, no
    // U barrier without pivoting) and check the simulator executes it
    // exactly, task for task, against what the threaded backend reports
    let (n, b) = (1024usize, 128usize);
    let nt = n / b;
    let g = TaskGraph::build_cholesky(n, b);
    let (potrf, trsm, u, updates) = g.counts_by_kind();
    assert_eq!(potrf, nt);
    assert_eq!(trsm, nt * (nt - 1) / 2);
    assert_eq!(u, 0, "no pivoting means no column fan-in tasks");
    assert_eq!(updates, (nt - 1) * nt * (nt + 1) / 6);
    assert_eq!(g.len(), potrf + trsm + updates);

    let mach = MachineConfig::intel_xeon_16(NoiseConfig::off());
    let sim = Solver::new(MatrixSource::shape(n, n))
        .algorithm(Algorithm::Cholesky)
        .tile(b)
        .backend(SimulatedBackend::new(mach))
        .run()
        .unwrap();
    assert_eq!(sim.tasks, g.len(), "simulator runs every DAG task once");
    assert_eq!(sim.schedule.total_tasks() as usize, g.len());

    // threaded at a size we can afford to execute for real: the span
    // timeline covers the same DAG, one span per task
    let (n2, b2) = (96usize, 16usize);
    let threaded = Solver::new(MatrixSource::spd_uniform(n2, 73))
        .algorithm(Algorithm::Cholesky)
        .tile(b2)
        .threads(3)
        .run()
        .unwrap();
    assert_eq!(threaded.tasks, TaskGraph::build_cholesky(n2, b2).len());
}

#[test]
fn the_adaptive_controller_is_backend_agnostic_over_identical_traces() {
    // the feedback controller is pure in (seed topology, observation
    // trace): seeded from the simulator's machine model or from the
    // same shape written by hand for the threaded side, an identical
    // canned trace must drive bitwise-identical split trajectories —
    // the sweep covers idle pressure, steal contention, locality flips
    // and a size histogram that crosses the cutoff window
    let mach = MachineConfig::intel_xeon_16(NoiseConfig::off());
    let policy = AdaptivePolicy::new(5);
    let mut sim_ctl =
        AdaptiveController::new(policy.clone(), &calu::sim::machine_topology(&mach), 16);
    let mut hand_ctl = AdaptiveController::new(policy, &CpuTopology::uniform(4, 4), 16);
    assert_eq!(
        sim_ctl.seed_choice(),
        hand_ctl.seed_choice(),
        "equal topologies seed equal splits"
    );
    for i in 0..12usize {
        let n = 128 * (1 + (i % 5));
        let obs = Observation::new(16, 2.0, 0.4 * 16.0 * ((i % 3) as f64) / 3.0)
            .with_contention(0.05 * (i % 2) as f64)
            .with_remote_fraction(if i >= 6 { 0.7 } else { 0.2 })
            .with_dims(n, n);
        sim_ctl.observe(&obs);
        hand_ctl.observe(&obs);
        let (s, h) = (sim_ctl.plan_choice(), hand_ctl.plan_choice());
        assert_eq!(s, h, "step {i}: the trajectories diverged");
        assert_eq!(
            s.dratio.to_bits(),
            h.dratio.to_bits(),
            "step {i}: dratio must agree to the last bit"
        );
    }
}

#[test]
fn adaptive_factors_are_bitwise_identical_to_the_fixed_config_at_the_chosen_split() {
    // adaptation moves knobs between runs, never inside a DAG: whatever
    // split the controller lands on, rerunning with that split pinned by
    // hand must reproduce the adaptive run's bits exactly
    let a = gen::uniform(96, 96, 29);
    let adaptive = Solver::new(a.clone())
        .tile(16)
        .threads(4)
        .adaptive(AdaptivePolicy::new(7));
    let mut last = None;
    for _ in 0..3 {
        last = Some(adaptive.run().unwrap());
    }
    let r = last.unwrap();
    let chosen = r.adaptation.as_ref().unwrap().chosen;
    let fixed = Solver::new(a)
        .tile(16)
        .threads(4)
        .dratio(chosen.dratio)
        .run()
        .unwrap();
    let (fa, ff) = (
        r.factorization.as_ref().unwrap(),
        fixed.factorization.as_ref().unwrap(),
    );
    assert_eq!(fa.lu.as_slice(), ff.lu.as_slice(), "packed LU bits");
    assert_eq!(fa.perm.pivots(), ff.perm.pivots(), "pivot rows");
    assert_eq!(
        r.residual.unwrap().to_bits(),
        fixed.residual.unwrap().to_bits(),
        "residual bits"
    );
    // and the executed schedule really was the chosen one
    match r.scheduler {
        SchedulerKind::Hybrid { dratio } => assert_eq!(dratio.to_bits(), chosen.dratio.to_bits()),
        other => panic!("adaptive plans always run Hybrid, got {other}"),
    }
}

#[test]
fn rhs_solve_matches_across_dratio_sweep() {
    // schedule must not change the math: identical solutions for every
    // dynamic share, threaded backend
    let n = 60;
    let a = gen::uniform(n, n, 3);
    let x_true = gen::uniform(n, 1, 4);
    let rhs = ops::matmul(&a, &x_true);
    for dratio in [0.0, 0.25, 0.75, 1.0] {
        let x = Solver::new(a.clone())
            .tile(10)
            .threads(3)
            .dratio(dratio)
            .run()
            .unwrap()
            .factorization
            .unwrap()
            .solve(&rhs);
        assert!(x.approx_eq(&x_true, 1e-7), "dratio {dratio} diverged");
    }
}
