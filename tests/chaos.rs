//! Chaos end-to-end: the adversity layer through the full facade.
//!
//! The paper's case for hybrid static/dynamic scheduling is that the
//! dynamic section absorbs adversity. These tests inject it on purpose
//! — seeded slowdowns, one-shot stalls, worker loss, kernel panics —
//! and hold the layer to its two promises: every faulted run either
//! completes **bitwise identical** to the clean run (the exclusive-
//! writer DAG makes factors schedule-independent) or fails with a
//! **typed error** while the pool keeps serving; and `drain` strands
//! nothing, faults included.

use std::time::Duration;

use calu::core::CaluError;
use calu::{
    AdaptivePolicy, Algorithm, Error, FaultPlan, JobClass, JobSpec, MatrixSource, QueueDiscipline,
    Report, ServeError, ServiceConfig, ServiceEvent, Solver,
};

/// The shared solo-run knobs of the fault matrix: small tiles so a 96²
/// run still has a real DAG, four workers so every fault targets a
/// distinct one.
fn base(cholesky: bool, queue: QueueDiscipline) -> Solver {
    let src = if cholesky {
        MatrixSource::spd_uniform(96, 77)
    } else {
        MatrixSource::uniform(96, 77)
    };
    let s = Solver::new(src)
        .tile(16)
        .threads(4)
        .dratio(0.5)
        .queue_discipline(queue);
    if cholesky {
        s.algorithm(Algorithm::Cholesky)
    } else {
        s
    }
}

/// Factor bits, pivots and residual bits of `r` must equal `clean`'s.
fn assert_bitwise(r: &Report, clean: &Report, ctx: &str) {
    let (f, fc) = (
        r.factorization.as_ref().unwrap(),
        clean.factorization.as_ref().unwrap(),
    );
    assert_eq!(f.lu.as_slice(), fc.lu.as_slice(), "factor bits, {ctx}");
    assert_eq!(f.perm.pivots(), fc.perm.pivots(), "pivot rows, {ctx}");
    assert_eq!(
        r.residual.unwrap().to_bits(),
        clean.residual.unwrap().to_bits(),
        "residual bits, {ctx}"
    );
}

#[test]
fn every_fault_in_the_matrix_finishes_bitwise_identical_to_the_clean_run() {
    // {slow, stall, lose} × {Global, Sharded, LockFree} × {LU, Cholesky}:
    // same threads, same seed, a different worker misbehaving each time
    // — and the exact same bits out every time
    let queues = [
        QueueDiscipline::Global,
        QueueDiscipline::sharded(),
        QueueDiscipline::lock_free(),
    ];
    let faults = [
        ("slow", FaultPlan::off().with_seed(11).slow_worker(1, 2.5)),
        (
            "stall",
            FaultPlan::off().with_seed(12).stall_worker(2, 2, 15),
        ),
        ("lose", FaultPlan::off().with_seed(13).lose_worker(3, 2)),
    ];
    for cholesky in [false, true] {
        for &queue in &queues {
            let clean = base(cholesky, queue).run().unwrap();
            assert_eq!(clean.schedule.lost_workers(), 0);
            assert_eq!(clean.schedule.total_rescued(), 0);
            for (name, plan) in &faults {
                let ctx = format!("fault={name} cholesky={cholesky} queue={queue:?}");
                let r = base(cholesky, queue)
                    .fault_plan(plan.clone())
                    .run()
                    .unwrap_or_else(|e| panic!("{ctx}: {e}"));
                assert_bitwise(&r, &clean, &ctx);
                let expected_lost = usize::from(*name == "lose");
                assert_eq!(r.schedule.lost_workers(), expected_lost, "{ctx}");
            }
        }
    }
}

#[test]
fn adaptive_runs_under_faults_stay_bitwise_identical_and_move_their_split() {
    // {slow, lose} × {Global, LockFree} with the feedback controller on:
    // every degraded adaptive run must still produce the exact bits of a
    // clean fixed-dratio run at the controller's chosen split (adaptation
    // moves knobs between runs, never the math), and after a few degraded
    // runs the report's chosen split has left the topology seed behind
    let queues = [QueueDiscipline::Global, QueueDiscipline::lock_free()];
    let faults = [
        ("slow", FaultPlan::off().with_seed(41).slow_worker(1, 3.0)),
        ("lose", FaultPlan::off().with_seed(43).lose_worker(3, 2)),
    ];
    for &queue in &queues {
        for (name, plan) in &faults {
            let adaptive = base(false, queue)
                .fault_plan(plan.clone())
                .adaptive(AdaptivePolicy::new(97));
            let mut last = None;
            for run in 0..3 {
                let ctx = format!("fault={name} queue={queue:?} run={run}");
                let r = adaptive.run().unwrap_or_else(|e| panic!("{ctx}: {e}"));
                let a = r
                    .adaptation
                    .clone()
                    .unwrap_or_else(|| panic!("{ctx}: adaptive run carried no AdaptationReport"));
                let clean = base(false, queue).dratio(a.chosen.dratio).run().unwrap();
                assert_bitwise(&r, &clean, &ctx);
                // the kill is armed at the victim's 2nd task; once the
                // split adapts the victim may finish earlier, so only the
                // seed run is guaranteed to lose it
                if *name == "lose" && run == 0 {
                    assert_eq!(r.schedule.lost_workers(), 1, "{ctx}");
                }
                last = Some(a);
            }
            let a = last.unwrap();
            assert_eq!(
                a.observations, 2,
                "fault={name} queue={queue:?}: the third plan saw both earlier runs"
            );
            assert!(
                a.adapted(),
                "fault={name} queue={queue:?}: degraded feedback moved the split \
                 (seed {:?}, chosen {:?})",
                a.seed,
                a.chosen
            );
        }
    }
}

#[test]
fn a_lost_workers_static_backlog_is_republished_and_reported() {
    // the rescue counters behind the headline invariant: a mostly-static
    // split piles work into the doomed worker's heap before it dies, so
    // the republish is visible in Report::schedule — and the bits still
    // match the clean run
    let make = || {
        Solver::new(MatrixSource::uniform(96, 31))
            .tile(16)
            .threads(4)
            .dratio(0.3)
    };
    let clean = make().run().unwrap();
    let r = make()
        .fault_plan(FaultPlan::off().with_seed(5).lose_worker(2, 3))
        .run()
        .unwrap();
    assert_bitwise(&r, &clean, "lose(2, 3) at dratio 0.3");
    assert!(r.schedule.threads[2].lost, "worker 2 flagged lost");
    assert_eq!(r.schedule.lost_workers(), 1);
    assert!(
        r.schedule.total_rescued() > 0,
        "the dead worker's static share was republished"
    );
    assert_eq!(
        r.schedule.total_rescued(),
        r.schedule.threads.iter().map(|t| t.rescued).sum::<u64>(),
        "the aggregate is the per-thread sum"
    );
}

#[test]
fn an_injected_panic_surfaces_as_the_facades_typed_factor_error() {
    let err = Solver::new(MatrixSource::uniform(64, 33))
        .tile(16)
        .threads(3)
        .fault_plan(FaultPlan::off().panic_worker(0, 1))
        .run()
        .unwrap_err();
    match err {
        Error::Factor(CaluError::TaskPanic(msg)) => {
            assert!(msg.contains("injected"), "{msg}")
        }
        other => panic!("expected Factor(TaskPanic), got {other:?}"),
    }
}

#[test]
fn sequential_reference_drivers_reject_armed_fault_plans() {
    // GEPP and incremental pivoting run on the caller's thread — there
    // are no workers to misbehave, so an armed plan is an honest
    // Unsupported, not a silently-clean "chaos" run
    for alg in [Algorithm::Gepp, Algorithm::IncPiv] {
        let err = Solver::new(MatrixSource::uniform(64, 9))
            .tile(16)
            .threads(2)
            .algorithm(alg)
            .fault_plan(FaultPlan::off().slow_worker(0, 2.0))
            .run()
            .unwrap_err();
        assert!(matches!(err, Error::Unsupported { .. }), "{alg:?}: {err}");
        // a disarmed plan stays the documented no-op everywhere
        Solver::new(MatrixSource::uniform(64, 9))
            .tile(16)
            .threads(2)
            .algorithm(alg)
            .fault_plan(FaultPlan::off())
            .run()
            .unwrap();
    }
}

#[test]
fn drain_under_worker_loss_strands_nothing_and_reports_degradation() {
    // a service whose pool loses a worker mid-traffic: every job still
    // resolves (bitwise-equal to a clean solo run), drain leaves nothing
    // behind, and the event stream carries the Degraded notice
    let service = Solver::new(MatrixSource::shape(8, 8))
        .tile(16)
        .threads(3)
        .dratio(0.5)
        .batch_small_cutoff(0)
        .fault_plan(FaultPlan::off().with_seed(21).lose_worker(1, 3))
        .serve()
        .unwrap();
    let events = service.events();
    let handles: Vec<_> = (0..6)
        .map(|i| {
            service
                .submit(JobSpec::uniform(128, 128, 400 + i), JobClass::Batch)
                .unwrap()
        })
        .collect();
    let reports: Vec<Report> = handles
        .into_iter()
        .enumerate()
        .map(|(i, h)| {
            h.wait()
                .unwrap_or_else(|e| panic!("job {i} stranded by the worker loss: {e}"))
        })
        .collect();
    service.drain();
    assert_eq!(service.pending(), 0, "drain left jobs pending");
    assert_eq!(service.queued(), 0, "drain left jobs queued");
    assert_eq!(service.lost_workers(), 1, "worker 1 died exactly once");
    assert_eq!(
        service.rescued_tasks(),
        reports
            .iter()
            .map(|r| r.schedule.total_rescued())
            .sum::<u64>(),
        "the pool's rescue counter mirrors the per-job reports"
    );
    for (i, r) in reports.iter().enumerate() {
        let solo = Solver::new(MatrixSource::uniform(128, 400 + i as u64))
            .tile(16)
            .threads(3)
            .dratio(0.5)
            .run()
            .unwrap();
        assert_bitwise(r, &solo, &format!("served job {i} vs clean solo run"));
    }
    let (mut jobs, mut degraded) = (0usize, 0usize);
    for e in events {
        match e {
            ServiceEvent::Job(j) => {
                assert_eq!(j.status, calu::JobStatus::Done, "job {:?}", j.id);
                jobs += 1;
            }
            ServiceEvent::Degraded { lost_workers } => {
                assert_eq!(lost_workers, 1);
                degraded += 1;
            }
            other => panic!("no reconfigure or journal in play, got {other:?}"),
        }
    }
    assert_eq!(jobs, 6, "one terminal event per job");
    assert_eq!(degraded, 1, "one Degraded notice per worker loss");
}

#[test]
fn deadlines_and_wait_timeout_fail_late_jobs_typed_without_poisoning_the_pool() {
    // one worker and a big blocker in front: the victim sits queued past
    // its deadline and the watchdog condemns it with the typed error;
    // wait_timeout hands the handle back on expiry and resolves later
    let service = Solver::new(MatrixSource::shape(8, 8))
        .tile(16)
        .threads(1)
        .verify(false)
        .serve()
        .unwrap();
    let blocker = service
        .submit(JobSpec::uniform(512, 512, 1), JobClass::Batch)
        .unwrap();
    let victim = service
        .submit(
            JobSpec::uniform(128, 128, 2).with_deadline(Duration::from_millis(2)),
            JobClass::Batch,
        )
        .unwrap();
    match victim.wait() {
        Err(ServeError::DeadlineExceeded { deadline }) => {
            assert_eq!(deadline, Duration::from_millis(2));
        }
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
    // the blocker is still grinding: the expired wait returns the handle
    let blocker = match blocker.wait_timeout(Duration::from_millis(1)) {
        Err(h) => h,
        Ok(r) => panic!("a 512² single-thread job finished within 1 ms? {r:?}"),
    };
    match blocker.wait_timeout(Duration::from_secs(120)) {
        Ok(Ok(r)) => assert_eq!(r.dims, (512, 512)),
        other => panic!("expected the blocker's report, got {other:?}"),
    }
    // the condemnation poisoned nothing: the pool serves on
    service
        .submit(JobSpec::uniform(48, 48, 3), JobClass::Interactive)
        .unwrap()
        .wait()
        .unwrap();
    service.drain();
    assert_eq!(service.pending(), 0);
}

#[test]
fn the_watchdog_condemns_a_stalled_run_as_worker_loss_and_the_pool_recovers() {
    // freeze both workers mid-run far past the stall timeout: the
    // heartbeat stops, the watchdog fails the job with the typed
    // WorkerLost, and once the stalls pass the same pool serves again
    let plan = FaultPlan::off()
        .with_seed(31)
        .stall_worker(0, 2, 800)
        .stall_worker(1, 2, 800);
    let service = Solver::new(MatrixSource::shape(8, 8))
        .tile(16)
        .threads(2)
        .dratio(0.5)
        .batch_small_cutoff(0)
        .verify(false)
        .fault_plan(plan)
        .serve_with(ServiceConfig {
            stall_timeout: Some(Duration::from_millis(100)),
            ..ServiceConfig::default()
        })
        .unwrap();
    let doomed = service
        .submit(JobSpec::uniform(128, 128, 5), JobClass::Batch)
        .unwrap();
    match doomed.wait() {
        Err(ServeError::Failed(CaluError::WorkerLost(msg))) => {
            assert!(msg.contains("progress"), "{msg}")
        }
        other => panic!("expected the watchdog's WorkerLost, got {other:?}"),
    }
    // stalls are one-shot: the woken pool still serves, and no worker
    // was actually lost
    service
        .submit(JobSpec::uniform(64, 64, 6), JobClass::Batch)
        .unwrap()
        .wait()
        .unwrap();
    service.drain();
    assert_eq!(service.lost_workers(), 0, "a stall is not a loss");
    assert_eq!(service.pending(), 0);
}
