//! The 0.1 entry points (`calu::calu_factor`, top-level `CaluConfig` /
//! `SimConfig` aliases) are `#[deprecated]` shims kept for exactly one
//! release. This file is the *only* place outside the facade allowed to
//! call them: it proves they still compile and still compute, while
//! every other test/example carries `#![deny(deprecated)]` so new code
//! cannot creep back onto them.
//!
//! REMOVAL TRACKING: delete this file together with the shims one
//! release after 0.2 (see the deprecation notes in `src/lib.rs` and the
//! ROADMAP "Open items" entry).

#![allow(deprecated)]

use calu::matrix::gen;
use calu::sched::SchedulerKind;
use calu::sim::MachineConfig;
use calu::sim::NoiseConfig;

#[test]
fn calu_factor_shim_still_factors() {
    let a = gen::uniform(48, 48, 5);
    let cfg = calu::CaluConfig::new(8).with_threads(2);
    let f = calu::calu_factor(&a, &cfg).expect("shim factors");
    assert!(f.residual(&a) < 1e-12);
}

#[test]
fn sim_config_alias_still_names_the_real_type() {
    let cfg: calu::SimConfig = calu::sim::SimConfig::new(
        MachineConfig::intel_xeon_16(NoiseConfig::off()),
        calu::matrix::Layout::BlockCyclic,
        SchedulerKind::Hybrid { dratio: 0.1 },
    );
    let g = calu::dag::TaskGraph::build(400, 400, 100);
    let r = calu::sim::run(&g, &cfg);
    assert!(r.makespan > 0.0);
}
