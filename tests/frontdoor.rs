//! Front-door end-to-end: the TCP protocol, live reconfigure and the
//! crash-safe journal through the full facade.
//!
//! The robustness contract under test: a malformed-request storm leaves
//! the listener serving (typed error replies, no panic); reconfigure
//! under load drops zero jobs and keeps JobIds continuous; and a
//! service restarted over its journal re-completes every interrupted
//! job bitwise-identical to an uninterrupted run.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use calu::{
    DrainSummary, JobClass, JobSpec, JobStatus, JournalConfig, MatrixSource, NetConfig, Report,
    ReportService, ServiceConfig, ServiceEvent, Solver,
};

/// The shared service knobs: small tiles, two workers, verification on
/// so every report carries a residual to compare bitwise.
fn solver() -> Solver {
    Solver::new(MatrixSource::shape(64, 64))
        .tile(16)
        .threads(2)
        .dratio(0.5)
        .verify(true)
}

/// Factor bits, pivots and residual bits of `r` must equal `clean`'s.
fn assert_bitwise(r: &Report, clean: &Report, ctx: &str) {
    let (f, fc) = (
        r.factorization.as_ref().unwrap(),
        clean.factorization.as_ref().unwrap(),
    );
    assert_eq!(f.lu.as_slice(), fc.lu.as_slice(), "factor bits, {ctx}");
    assert_eq!(f.perm.pivots(), fc.perm.pivots(), "pivot rows, {ctx}");
    assert_eq!(
        r.residual.unwrap().to_bits(),
        clean.residual.unwrap().to_bits(),
        "residual bits, {ctx}"
    );
}

/// One line-protocol exchange on an established connection.
fn roundtrip(reader: &mut BufReader<TcpStream>, writer: &mut TcpStream, req: &str) -> String {
    writeln!(writer, "{req}").expect("write request");
    let mut line = String::new();
    reader.read_line(&mut line).expect("read reply");
    assert!(
        line.ends_with('\n'),
        "reply to {req:?} was not a full line: {line:?}"
    );
    line.trim().to_string()
}

fn connect(addr: std::net::SocketAddr) -> (BufReader<TcpStream>, TcpStream) {
    let stream = TcpStream::connect(addr).expect("connect to listener");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    (
        BufReader::new(stream.try_clone().expect("clone stream")),
        stream,
    )
}

/// A fresh journal path per test, in the target-adjacent temp dir.
fn journal_path(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "calu-frontdoor-{tag}-{}-{seq}.journal",
        std::process::id()
    ))
}

#[test]
fn tcp_submit_status_stats_drain_roundtrip() {
    let listener = solver().listen("127.0.0.1:0").unwrap();
    let (mut reader, mut writer) = connect(listener.local_addr());

    assert_eq!(roundtrip(&mut reader, &mut writer, "ping"), "ok pong");
    let reply = roundtrip(
        &mut reader,
        &mut writer,
        "submit interactive uniform 64 64 7",
    );
    let id: u64 = reply
        .strip_prefix("ok ")
        .unwrap_or_else(|| panic!("expected ok <id>, got {reply:?}"))
        .parse()
        .expect("job id");
    let spd = roundtrip(&mut reader, &mut writer, "submit batch spd 64 9");
    assert!(spd.starts_with("ok "), "spd submit: {spd:?}");

    // poll status to terminal
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let status = roundtrip(&mut reader, &mut writer, &format!("status {id}"));
        if status == format!("status {id} done") {
            break;
        }
        assert!(
            status.starts_with(&format!("status {id} ")),
            "unexpected status reply {status:?}"
        );
        assert!(Instant::now() < deadline, "job {id} never finished");
        std::thread::sleep(Duration::from_millis(2));
    }

    let stats = roundtrip(&mut reader, &mut writer, "stats");
    assert!(stats.starts_with("stats pending="), "stats line: {stats:?}");
    assert!(stats.contains("threads=2"), "stats line: {stats:?}");
    assert!(stats.contains("generation=0"), "stats line: {stats:?}");

    // drain over the wire: the reply carries the summary and the
    // listener shuts itself down
    let drained = roundtrip(&mut reader, &mut writer, "drain");
    assert!(
        drained.starts_with("ok drained completed="),
        "drain reply: {drained:?}"
    );
    listener.shutdown();
    assert!(listener.is_shut_down());
    assert_eq!(listener.service().pending(), 0);
}

#[test]
fn malformed_storm_leaves_the_listener_serving() {
    let listener = solver().listen("127.0.0.1:0").unwrap();
    let (mut reader, mut writer) = connect(listener.local_addr());

    // a storm of garbage: every line gets a typed error reply on the
    // same connection — never a disconnect, never a panic
    for req in [
        "frobnicate",
        "submit",
        "submit express uniform 8 8 1",
        "submit batch uniform 8 8",
        "submit batch uniform eight 8 1",
        "submit batch spd 8 1 deadline_ms soon",
        "submit batch uniform 0 8 1",
        "status",
        "status x",
        "status 424242",
        "cancel nope",
        "cancel 424242",
        "stats now please",
    ] {
        let reply = roundtrip(&mut reader, &mut writer, req);
        assert!(
            reply.starts_with("err "),
            "garbage {req:?} must get a typed error, got {reply:?}"
        );
    }

    // an over-long line is answered and discarded without killing the
    // connection
    let long = "x".repeat(8 * 1024);
    let reply = roundtrip(&mut reader, &mut writer, &long);
    assert!(
        reply.starts_with("err malformed line exceeds"),
        "over-long line reply: {reply:?}"
    );

    // the same connection still serves real work
    let reply = roundtrip(
        &mut reader,
        &mut writer,
        "submit interactive uniform 48 48 3",
    );
    assert!(reply.starts_with("ok "), "post-storm submit: {reply:?}");

    // 10 of the storm lines fail to parse, plus the over-long one; the
    // rest are well-formed requests that fail typed (invalid spec,
    // unknown job) without touching the malformed counter
    let stats = listener.stats();
    assert!(
        stats.malformed >= 11,
        "malformed counter saw the storm: {stats:?}"
    );
    listener.service().drain();
    listener.shutdown();
}

#[test]
fn overloaded_listener_sheds_with_a_busy_reply() {
    // one handler, a one-deep accept backlog: with the handler pinned
    // on an idle connection and a second parked, a third arrival must
    // be shed with a typed busy line instead of queueing unboundedly
    let listener = solver()
        .listen_with(
            "127.0.0.1:0",
            ServiceConfig::default(),
            NetConfig {
                max_connections: 1,
                accept_backlog: 1,
                ..NetConfig::default()
            },
        )
        .unwrap();
    let addr = listener.local_addr();

    let (_r1, _w1) = connect(addr); // claimed by the only handler
    std::thread::sleep(Duration::from_millis(50));
    let (_r2, _w2) = connect(addr); // parked in the accept backlog
    std::thread::sleep(Duration::from_millis(50));
    let (mut r3, _w3) = connect(addr); // over the line: shed
    let mut line = String::new();
    r3.read_line(&mut line).expect("read shed reply");
    assert!(
        line.starts_with("busy retry_after_ms="),
        "shed reply: {line:?}"
    );
    let mut eof = String::new();
    assert_eq!(r3.read_line(&mut eof).unwrap(), 0, "shed connection closes");
    assert!(listener.stats().shed >= 1);

    listener.service().drain();
    listener.shutdown();
}

#[test]
fn reconfigure_under_load_drops_zero_jobs_and_keeps_ids_continuous() {
    let service = solver().serve().unwrap();
    let events = service.events();

    // reference factors from an uninterrupted identical-knob run: the
    // reconfigures below change threads and dratio, which change the
    // schedule but (exclusive-writer DAG) never the bits
    let clean: Vec<Report> = (0..18)
        .map(|i| {
            Solver::new(MatrixSource::uniform(96, 500 + i))
                .tile(16)
                .threads(2)
                .dratio(0.5)
                .verify(true)
                .run()
                .unwrap()
        })
        .collect();

    let handles: Vec<_> = (0..18)
        .map(|i| {
            service
                .submit(
                    JobSpec::uniform(96, 96, 500 + i),
                    JobClass::ALL[i as usize % 3],
                )
                .expect("submit under load")
        })
        .collect();
    // ids are assigned continuously at admission
    for (i, h) in handles.iter().enumerate() {
        assert_eq!(h.id(), i as u64 + 1, "continuous JobIds");
    }

    // three back-to-back handovers while the backlog is still draining
    let g1 = solver()
        .threads(3)
        .dratio(0.3)
        .reconfigure(&service)
        .unwrap();
    let g2 = solver()
        .threads(1)
        .dratio(0.8)
        .reconfigure(&service)
        .unwrap();
    let g3 = solver()
        .threads(2)
        .dratio(0.5)
        .reconfigure(&service)
        .unwrap();
    assert_eq!((g1, g2, g3), (1, 2, 3), "generations count handovers");
    assert_eq!(service.generation(), 3);

    // zero dropped: every handle resolves, bitwise-identical to clean
    for (i, h) in handles.into_iter().enumerate() {
        let report = h.wait().unwrap_or_else(|e| panic!("job {i} dropped: {e}"));
        assert_bitwise(&report, &clean[i], &format!("job {i} across handovers"));
    }

    let summary = service.drain();
    assert_eq!(
        summary,
        DrainSummary {
            completed: 18,
            cancelled: 0
        }
    );
    assert_eq!(service.drain(), summary, "drain is idempotent");

    // the event stream ran continuously across the handovers: exactly
    // one terminal event per job, all Done, plus three Reconfigured
    // notices with ascending generations — and then it ended
    let mut done_ids = Vec::new();
    let mut generations = Vec::new();
    for e in events {
        match e {
            ServiceEvent::Job(j) => {
                assert_eq!(j.status, JobStatus::Done, "job {}", j.id);
                done_ids.push(j.id);
            }
            ServiceEvent::Reconfigured { generation } => generations.push(generation),
            other => panic!("unexpected event {other:?}"),
        }
    }
    done_ids.sort_unstable();
    assert_eq!(done_ids, (1..=18).collect::<Vec<_>>(), "one event per job");
    assert_eq!(generations, vec![1, 2, 3]);
}

#[test]
fn events_try_recv_polls_without_blocking() {
    let service = solver().serve().unwrap();
    let events = service.events();
    assert!(events.try_recv().is_none(), "nothing happened yet");
    let h = service
        .submit(JobSpec::uniform(48, 48, 1), JobClass::Interactive)
        .unwrap();
    h.wait().unwrap();
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        match events.try_recv() {
            Some(ServiceEvent::Job(j)) => {
                assert_eq!(j.status, JobStatus::Done);
                break;
            }
            Some(other) => panic!("unexpected event {other:?}"),
            None => {
                assert!(Instant::now() < deadline, "terminal event never arrived");
                std::thread::sleep(Duration::from_millis(1));
            }
        }
    }
    service.drain();
}

#[test]
fn drain_summary_counts_completions_and_cancellations_idempotently() {
    // one worker: a big blocker keeps the victim queued long enough to
    // cancel it deterministically
    let service = Solver::new(MatrixSource::shape(8, 8))
        .tile(16)
        .threads(1)
        .verify(false)
        .serve()
        .unwrap();
    let blocker = service
        .submit(JobSpec::uniform(384, 384, 1), JobClass::Batch)
        .unwrap();
    let victim = service
        .submit(JobSpec::uniform(256, 256, 2), JobClass::Batch)
        .unwrap();
    assert!(service.cancel(&victim), "the queued victim cancels");
    blocker.wait().unwrap();
    let summary = service.drain();
    assert_eq!(
        summary,
        DrainSummary {
            completed: 1,
            cancelled: 1
        }
    );
    assert_eq!(service.drain(), summary, "second drain returns the memo");
}

/// The chaos e2e of the journal: an unclean shutdown mid-batch, then a
/// restart over the same journal, must re-complete every interrupted
/// job bitwise-identical to an uninterrupted run.
///
/// The "crash" is a snapshot of the journal file taken while the batch
/// is still in flight: append-plus-fsync ordering makes a byte-level
/// copy at instant T exactly the file a `kill -9` at T would have left
/// behind (plus, here, a torn trailing line to prove tolerance).
#[test]
fn journal_replay_after_unclean_shutdown_is_bitwise_identical() {
    let live = journal_path("live");
    let crash = journal_path("crash");
    let seeds: Vec<u64> = (900..906).collect();

    // uninterrupted reference factors for the same seeds (threads do
    // not affect the bits, only the tile does — kept at 16 throughout)
    let clean: Vec<Report> = seeds
        .iter()
        .map(|&seed| {
            Solver::new(MatrixSource::uniform(96, seed))
                .tile(16)
                .threads(2)
                .dratio(0.5)
                .verify(true)
                .run()
                .unwrap()
        })
        .collect();

    // first life: a single-worker journaled service with a big blocker
    // in front, so the six victims are deterministically still queued
    // (no `end` markers possible) when the "crash" snapshot is taken
    {
        let service = Solver::new(MatrixSource::shape(8, 8))
            .tile(16)
            .threads(1)
            .dratio(0.5)
            .verify(true)
            .serve_with(ServiceConfig {
                journal: Some(JournalConfig::new(&live)),
                ..ServiceConfig::default()
            })
            .unwrap();
        assert!(service.take_replayed().is_empty(), "fresh journal");
        let blocker = service
            .submit(JobSpec::uniform(512, 512, 899), JobClass::Batch)
            .unwrap();
        let victims: Vec<_> = seeds
            .iter()
            .map(|&seed| {
                service
                    .submit(
                        JobSpec::uniform(96, 96, seed).with_deadline(Duration::from_secs(120)),
                        JobClass::Batch,
                    )
                    .unwrap()
            })
            .collect();
        // the write-ahead contract: every accepted job is on disk NOW,
        // before its completion — this copy is the crash image
        std::fs::copy(&live, &crash).unwrap();
        blocker.wait().unwrap();
        for h in victims {
            h.wait().unwrap();
        }
        service.drain();
        // a clean drain compacts the live journal to empty
        assert_eq!(std::fs::read_to_string(&live).unwrap(), "");
    }

    // a torn trailing line, as a crash mid-append would leave
    {
        use std::io::Write as _;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&crash)
            .unwrap();
        write!(f, "job 99 bat").unwrap();
    }

    // second life: restart over the crash image (wider pool — replay is
    // schedule-independent) — every interrupted job replays under its
    // original id and factors to the same bits
    let restarted: ReportService = solver()
        .serve_with(ServiceConfig {
            journal: Some(JournalConfig::new(&crash)),
            ..ServiceConfig::default()
        })
        .unwrap();
    let events = restarted.events();
    let replayed = restarted.take_replayed();
    // ids 2..=7 are the victims; the blocker (id 1) replays too unless
    // it finished before the snapshot
    let mut replayed_ids: Vec<u64> = replayed.iter().map(|h| h.id()).collect();
    replayed_ids.sort_unstable();
    for victim_id in 2..=7u64 {
        assert!(
            replayed_ids.contains(&victim_id),
            "queued victim {victim_id} must replay, got {replayed_ids:?}"
        );
    }
    let n_replayed = replayed.len();
    for h in replayed {
        let id = h.id();
        assert_eq!(
            h.dims(),
            if id == 1 { (512, 512) } else { (96, 96) },
            "replayed dims survive the journal"
        );
        let report = h
            .wait()
            .unwrap_or_else(|e| panic!("replayed job {id}: {e}"));
        if id >= 2 {
            assert_bitwise(
                &report,
                &clean[(id - 2) as usize],
                &format!("replayed job {id} vs uninterrupted run"),
            );
        }
    }
    restarted.drain();
    let mut saw_replayed = false;
    for e in events {
        if let ServiceEvent::JournalReplayed { jobs } = e {
            assert_eq!(jobs, n_replayed);
            saw_replayed = true;
        }
    }
    assert!(saw_replayed, "the stream announces the replay");

    // third life: the drained journal has nothing left to replay
    let third = solver()
        .serve_with(ServiceConfig {
            journal: Some(JournalConfig::new(&crash)),
            ..ServiceConfig::default()
        })
        .unwrap();
    assert!(third.take_replayed().is_empty(), "replay is not repeated");
    third.drain();

    let _ = std::fs::remove_file(&live);
    let _ = std::fs::remove_file(&crash);
}
