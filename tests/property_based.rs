//! Randomized-sweep tests (formerly proptest) of the core invariants,
//! driven through the unified `Solver` facade.

use calu::matrix::{gen, ProcessGrid};
use calu::sched::{make_policy, nstatic_for, SchedulerKind};
use calu::sim::{MachineConfig, NoiseConfig};
use calu::{MatrixSource, SimulatedBackend, Solver};
use calu_rand::Rng;

/// PA = LU holds for random sizes, block sizes and thread counts.
#[test]
fn calu_residual_small() {
    let mut rng = Rng::seed_from_u64(30);
    for _ in 0..24 {
        let n = rng.gen_range(8..80);
        let b = rng.gen_range(4..24);
        let threads = rng.gen_range(1..5);
        let dratio = rng.gen_range(0.0..=1.0);
        let seed = rng.next_u64() % 1000;
        let a = gen::uniform(n, n, seed);
        let report = Solver::new(a)
            .tile(b)
            .threads(threads)
            .dratio(dratio)
            .run()
            .unwrap();
        let resid = report.residual.unwrap();
        assert!(resid < 1e-11, "residual {resid}");
        // permutation must be a valid swap sequence over n rows
        let f = report.factorization.as_ref().unwrap();
        let explicit = f.perm.explicit(n);
        let mut sorted = explicit.clone();
        sorted.sort();
        assert_eq!(sorted, (0..n).collect::<Vec<_>>());
    }
}

/// The simple reference agrees with the tiled executor on solves.
#[test]
fn simple_and_threaded_agree() {
    let mut rng = Rng::seed_from_u64(31);
    for _ in 0..16 {
        let n = rng.gen_range(12..64);
        let seed = rng.next_u64() % 500;
        let a = gen::uniform(n, n, seed);
        let rhs = gen::uniform(n, 1, seed + 1);
        let x1 = calu::core::calu_simple(&a, 8, 2).solve(&rhs);
        let report = Solver::new(a.clone()).tile(8).threads(2).run().unwrap();
        let x2 = report.factorization.unwrap().solve(&rhs);
        // both must solve the system; compare against each other loosely
        let e1 = calu::core::verify::backward_error(&a, &x1, &rhs);
        let e2 = calu::core::verify::backward_error(&a, &x2, &rhs);
        assert!(e1 < 1e-9, "simple backward error {e1}");
        assert!(e2 < 1e-9, "threaded backward error {e2}");
    }
}

/// Layout conversions round-trip exactly.
#[test]
fn layout_roundtrip() {
    use calu::matrix::{BclMatrix, CmTiles, TileStorage, TlbMatrix};
    let mut rng = Rng::seed_from_u64(32);
    for _ in 0..48 {
        let m = rng.gen_range(1..40);
        let n = rng.gen_range(1..40);
        let b = rng.gen_range(1..12);
        let pr = rng.gen_range(1..4);
        let pc = rng.gen_range(1..4);
        let seed = rng.next_u64() % 100;
        let a = gen::uniform(m, n, seed);
        let grid = ProcessGrid::new(pr, pc).unwrap();
        assert!(CmTiles::from_dense(&a, b).to_dense().approx_eq(&a, 0.0));
        assert!(BclMatrix::from_dense(&a, b, grid)
            .to_dense()
            .approx_eq(&a, 0.0));
        assert!(TlbMatrix::from_dense(&a, b, grid)
            .to_dense()
            .approx_eq(&a, 0.0));
    }
}

/// Every policy executes every task exactly once, regardless of the
/// matrix shape and grid.
#[test]
fn policies_complete_without_loss() {
    use calu::dag::TaskGraph;
    let mut rng = Rng::seed_from_u64(33);
    for _ in 0..12 {
        let mt = rng.gen_range(1..8);
        let nt = rng.gen_range(1..8);
        let pr = rng.gen_range(1..3);
        let pc = rng.gen_range(1..3);
        let dratio = rng.gen_range(0.0..=1.0);
        let g = TaskGraph::build_calu(mt * 50, nt * 50, 50, pr);
        let grid = ProcessGrid::new(pr, pc).unwrap();
        for kind in [
            SchedulerKind::Static,
            SchedulerKind::Dynamic,
            SchedulerKind::Hybrid { dratio },
            SchedulerKind::WorkStealing { seed: 3 },
        ] {
            let mut p = make_policy(kind, &g, grid);
            let mut deps: Vec<u32> = g.ids().map(|t| g.dep_count(t)).collect();
            for t in g.initial_ready() {
                p.on_ready(t, None);
            }
            let mut seen = vec![false; g.len()];
            let mut done = 0;
            let mut stuck = 0;
            while done < g.len() {
                let mut progressed = false;
                for core in 0..grid.size() {
                    if let Some(popped) = p.pop(core) {
                        assert!(!seen[popped.task.idx()], "task executed twice");
                        seen[popped.task.idx()] = true;
                        done += 1;
                        progressed = true;
                        for &s in g.successors(popped.task) {
                            deps[s.idx()] -= 1;
                            if deps[s.idx()] == 0 {
                                p.on_ready(s, Some(core));
                            }
                        }
                    }
                }
                stuck = if progressed { 0 } else { stuck + 1 };
                assert!(stuck < 2, "policy starved");
            }
        }
    }
}

/// Simulator invariants through the facade: determinism across reruns
/// and the work lower bound.
#[test]
fn simulator_bounds() {
    let mach = MachineConfig::intel_xeon_16(NoiseConfig::off());
    let mut rng = Rng::seed_from_u64(34);
    for _ in 0..8 {
        let n = rng.gen_range(500..1500);
        let dratio = rng.gen_range(0.0..=1.0);
        let solver = Solver::new(MatrixSource::shape(n, n))
            .dratio(dratio)
            .backend(SimulatedBackend::new(mach.clone()));
        let r1 = solver.run().unwrap();
        let r2 = solver.run().unwrap();
        assert_eq!(r1.makespan, r2.makespan, "simulation must be deterministic");
        // nominal flops never exceed executed flops, so this bound holds
        let ideal = r1.nominal_flops / mach.peak_flops();
        assert!(r1.makespan >= ideal, "makespan below the work bound");
        assert!(r1.utilization() <= 1.0 + 1e-9);
    }
}

/// Hybrid extremes: dratio 0/1 split the DAG exactly like the pure
/// policies split it.
#[test]
fn nstatic_extremes() {
    for npanels in 1..200 {
        assert_eq!(nstatic_for(0.0, npanels), npanels);
        assert_eq!(nstatic_for(1.0, npanels), 0);
        assert!(nstatic_for(0.5, npanels) <= npanels);
    }
}
