//! Property-based tests (proptest) on the core invariants.

use calu::core::{calu_factor, calu_simple, CaluConfig};
use calu::dag::TaskGraph;
use calu::matrix::{gen, Layout, ProcessGrid};
use calu::sched::{make_policy, nstatic_for, SchedulerKind};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// PA = LU holds for random sizes, block sizes and thread counts.
    #[test]
    fn calu_residual_small(
        n in 8usize..80,
        b in 4usize..24,
        threads in 1usize..5,
        dratio in 0.0f64..=1.0,
        seed in 0u64..1000,
    ) {
        let a = gen::uniform(n, n, seed);
        let cfg = CaluConfig::new(b).with_threads(threads).with_dratio(dratio);
        let f = calu_factor(&a, &cfg).unwrap();
        prop_assert!(f.residual(&a) < 1e-11, "residual {}", f.residual(&a));
        // permutation must be a valid swap sequence over n rows
        let explicit = f.perm.explicit(n);
        let mut sorted = explicit.clone();
        sorted.sort();
        prop_assert_eq!(sorted, (0..n).collect::<Vec<_>>());
    }

    /// The simple reference agrees with the tiled executor on solves.
    #[test]
    fn simple_and_threaded_agree(
        n in 12usize..64,
        seed in 0u64..500,
    ) {
        let a = gen::uniform(n, n, seed);
        let rhs = gen::uniform(n, 1, seed + 1);
        let x1 = calu_simple(&a, 8, 2).solve(&rhs);
        let x2 = calu_factor(&a, &CaluConfig::new(8).with_threads(2)).unwrap().solve(&rhs);
        // both must solve the system; compare against each other loosely
        let e1 = calu::core::verify::backward_error(&a, &x1, &rhs);
        let e2 = calu::core::verify::backward_error(&a, &x2, &rhs);
        prop_assert!(e1 < 1e-9, "simple backward error {e1}");
        prop_assert!(e2 < 1e-9, "threaded backward error {e2}");
    }

    /// Layout conversions round-trip exactly.
    #[test]
    fn layout_roundtrip(
        m in 1usize..40,
        n in 1usize..40,
        b in 1usize..12,
        pr in 1usize..4,
        pc in 1usize..4,
        seed in 0u64..100,
    ) {
        use calu::matrix::{BclMatrix, CmTiles, TileStorage, TlbMatrix};
        let a = gen::uniform(m, n, seed);
        let grid = ProcessGrid::new(pr, pc).unwrap();
        prop_assert!(CmTiles::from_dense(&a, b).to_dense().approx_eq(&a, 0.0));
        prop_assert!(BclMatrix::from_dense(&a, b, grid).to_dense().approx_eq(&a, 0.0));
        prop_assert!(TlbMatrix::from_dense(&a, b, grid).to_dense().approx_eq(&a, 0.0));
    }

    /// Every policy executes every task exactly once, regardless of the
    /// matrix shape and grid.
    #[test]
    fn policies_complete_without_loss(
        mt in 1usize..8,
        nt in 1usize..8,
        pr in 1usize..3,
        pc in 1usize..3,
        dratio in 0.0f64..=1.0,
    ) {
        let g = TaskGraph::build_calu(mt * 50, nt * 50, 50, pr);
        let grid = ProcessGrid::new(pr, pc).unwrap();
        for kind in [
            SchedulerKind::Static,
            SchedulerKind::Dynamic,
            SchedulerKind::Hybrid { dratio },
            SchedulerKind::WorkStealing { seed: 3 },
        ] {
            let mut p = make_policy(kind, &g, grid);
            let mut deps: Vec<u32> = g.ids().map(|t| g.dep_count(t)).collect();
            for t in g.initial_ready() {
                p.on_ready(t, None);
            }
            let mut seen = vec![false; g.len()];
            let mut done = 0;
            let mut stuck = 0;
            while done < g.len() {
                let mut progressed = false;
                for core in 0..grid.size() {
                    if let Some(popped) = p.pop(core) {
                        prop_assert!(!seen[popped.task.idx()], "task executed twice");
                        seen[popped.task.idx()] = true;
                        done += 1;
                        progressed = true;
                        for &s in g.successors(popped.task) {
                            deps[s.idx()] -= 1;
                            if deps[s.idx()] == 0 {
                                p.on_ready(s, Some(core));
                            }
                        }
                    }
                }
                stuck = if progressed { 0 } else { stuck + 1 };
                prop_assert!(stuck < 2, "policy starved");
            }
        }
    }

    /// Simulator invariants: makespan ≥ both lower bounds (work/p and
    /// weighted critical path is costly to compute, so check work bound
    /// and positivity), determinism across reruns.
    #[test]
    fn simulator_bounds(
        n in 500usize..1500,
        dratio in 0.0f64..=1.0,
    ) {
        use calu::sim::{run, MachineConfig, NoiseConfig, SimConfig};
        let mach = MachineConfig::intel_xeon_16(NoiseConfig::off());
        let grid = ProcessGrid::square_for(16).unwrap();
        let g = TaskGraph::build_calu(n, n, 100, grid.pr());
        let cfg = SimConfig::new(mach.clone(), Layout::BlockCyclic, SchedulerKind::Hybrid { dratio });
        let r1 = run(&g, &cfg);
        let r2 = run(&g, &cfg);
        prop_assert_eq!(r1.makespan, r2.makespan, "simulation must be deterministic");
        let ideal = r1.executed_flops / mach.peak_flops();
        prop_assert!(r1.makespan >= ideal, "makespan below the work bound");
        prop_assert!(r1.utilization() <= 1.0 + 1e-9);
    }

    /// Hybrid extremes: dratio 0/1 split the DAG exactly like the pure
    /// policies split it.
    #[test]
    fn nstatic_extremes(npanels in 1usize..200) {
        prop_assert_eq!(nstatic_for(0.0, npanels), npanels);
        prop_assert_eq!(nstatic_for(1.0, npanels), 0);
        let mid = nstatic_for(0.5, npanels);
        prop_assert!(mid <= npanels);
    }
}
