//! Builder validation: every bad knob surfaces as the unified
//! `calu::Error` with a message that says what to change — no panics,
//! no per-crate error types leaking through.

use calu::matrix::{gen, Layout};
use calu::sched::SchedulerKind;
use calu::sim::{MachineConfig, NoiseConfig};
use calu::{Error, MatrixSource, SimulatedBackend, Solver, ThreadedBackend};

fn config_message(err: Error) -> String {
    match err {
        Error::Config(msg) => msg,
        other => panic!("expected Error::Config, got {other:?}"),
    }
}

#[test]
fn zero_tile_size_is_config_error() {
    let err = Solver::new(gen::uniform(16, 16, 1))
        .tile(0)
        .run()
        .unwrap_err();
    let msg = config_message(err);
    assert!(msg.contains("block size"), "actionable message, got: {msg}");
}

#[test]
fn zero_threads_is_config_error() {
    let err = Solver::new(gen::uniform(16, 16, 1))
        .tile(4)
        .threads(0)
        .run()
        .unwrap_err();
    let msg = config_message(err);
    assert!(msg.contains("thread"), "actionable message, got: {msg}");
}

#[test]
fn dratio_outside_unit_interval_is_config_error() {
    for bad in [-0.1, 1.5, f64::NAN] {
        let err = Solver::new(gen::uniform(16, 16, 1))
            .tile(4)
            .dratio(bad)
            .run()
            .unwrap_err();
        let msg = config_message(err);
        assert!(
            msg.contains("dratio"),
            "actionable message for {bad}, got: {msg}"
        );
    }
}

#[test]
fn zero_grouping_is_config_error() {
    let err = Solver::new(gen::uniform(16, 16, 1))
        .tile(4)
        .grouping(0)
        .run()
        .unwrap_err();
    let msg = config_message(err);
    assert!(msg.contains("group"), "actionable message, got: {msg}");
}

#[test]
fn grouping_conflicts_with_non_grouping_layouts() {
    for layout in [Layout::TwoLevelBlock, Layout::ColumnMajor] {
        let err = Solver::new(gen::uniform(32, 32, 1))
            .tile(8)
            .layout(layout)
            .grouping(3)
            .run()
            .unwrap_err();
        let msg = config_message(err);
        assert!(
            msg.contains("BlockCyclic") && msg.contains("grouping"),
            "{layout}: message must name the fix, got: {msg}"
        );
    }
}

#[test]
fn zero_tslu_leaves_is_config_error() {
    let err = Solver::new(gen::uniform(32, 32, 1))
        .tile(8)
        .tslu_leaves(0)
        .run()
        .unwrap_err();
    let msg = config_message(err);
    assert!(msg.contains("leaf") || msg.contains("leaves"), "got: {msg}");
}

#[test]
fn simulated_thread_mismatch_names_both_counts() {
    let err = Solver::new(MatrixSource::shape(400, 400))
        .threads(7)
        .backend(SimulatedBackend::new(MachineConfig::intel_xeon_16(
            NoiseConfig::off(),
        )))
        .run()
        .unwrap_err();
    let msg = config_message(err);
    assert!(msg.contains('7') && msg.contains("16"), "got: {msg}");
}

#[test]
fn threaded_needs_data_and_says_so() {
    let err = Solver::new(MatrixSource::shape(64, 64))
        .tile(16)
        .backend(ThreadedBackend)
        .run()
        .unwrap_err();
    let msg = config_message(err);
    assert!(
        msg.contains("DenseMatrix") || msg.contains("Uniform"),
        "got: {msg}"
    );
}

#[test]
fn unsupported_combinations_point_at_alternatives() {
    let err = Solver::new(gen::uniform(32, 32, 1))
        .tile(8)
        .scheduler(SchedulerKind::WorkStealing { seed: 1 })
        .run()
        .unwrap_err();
    match err {
        Error::Unsupported { backend, what } => {
            assert_eq!(backend, "threaded");
            assert!(what.contains("SimulatedBackend"), "got: {what}");
        }
        other => panic!("expected Error::Unsupported, got {other:?}"),
    }
}

#[test]
fn empty_matrix_is_a_factor_error() {
    let err = Solver::new(calu::matrix::DenseMatrix::zeros(0, 0))
        .tile(4)
        .run()
        .unwrap_err();
    assert!(matches!(
        err,
        Error::Factor(calu::core::CaluError::EmptyMatrix)
    ));
    assert!(err.to_string().contains("empty"));
}

#[test]
fn errors_display_the_unified_prefix() {
    let err = Solver::new(gen::uniform(8, 8, 1))
        .tile(0)
        .run()
        .unwrap_err();
    assert!(err.to_string().starts_with("invalid solver configuration"));
}
