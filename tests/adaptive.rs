//! The adaptive-scheduling feedback loop, held to its contract: replay
//! canned observation traces (a healthy machine, one half-speed core, a
//! core lost mid-run, an all-small and an all-large batch mix) through
//! the controller and assert the chosen splits are **deterministic**,
//! **bounded** by the same ranges `CaluConfig::validate` enforces, and
//! **monotone** — more idle always buys a larger dynamic share. The
//! same controller then runs end-to-end on both backends: the threaded
//! facade and the simulator must seed identically-shaped controllers
//! and replay identically under identical traces.

use calu::sched::CpuTopology;
use calu::sim::{MachineConfig, NoiseConfig};
use calu::{
    AdaptiveController, AdaptiveMode, AdaptivePolicy, FaultPlan, JobClass, JobSpec, MatrixSource,
    Observation, SimulatedBackend, Solver, SplitChoice, StealOrder,
};

const THREADS: usize = 8;

/// Low-gain policy so multi-step traces stay interior to the dratio
/// bounds (the clamps are exercised separately).
fn policy(seed: u64) -> AdaptivePolicy {
    AdaptivePolicy::new(seed).with_gain(0.2)
}

fn topo() -> CpuTopology {
    CpuTopology::uniform(2, 4)
}

fn controller(seed: u64) -> AdaptiveController {
    AdaptiveController::new(policy(seed), &topo(), THREADS)
}

/// A fully busy machine: idle under the tolerated target, nothing lost.
fn healthy_trace(n: usize) -> Vec<Observation> {
    (0..n)
        .map(|_| Observation::new(THREADS, 1.0, 0.02 * THREADS as f64).with_dims(512, 512))
        .collect()
}

/// One core at half speed: the seven fast workers drain their static
/// queues and wait on the straggler's panels — idle ≈ 30% of the
/// makespan rectangle, with rescued tasks marking the degradation.
fn half_speed_trace(n: usize) -> Vec<Observation> {
    (0..n)
        .map(|_| {
            Observation::new(THREADS, 2.0, 0.3 * 2.0 * THREADS as f64)
                .with_rescued(6)
                .with_dims(512, 512)
        })
        .collect()
}

/// A core lost mid-run: one worker retired, its static share rescued,
/// the survivors idling even harder at the tail.
fn lost_core_trace(n: usize) -> Vec<Observation> {
    (0..n)
        .map(|_| {
            Observation::new(THREADS, 2.5, 0.4 * 2.5 * THREADS as f64)
                .with_lost(1)
                .with_rescued(20)
                .with_dims(512, 512)
        })
        .collect()
}

/// A batch of uniformly tiny items.
fn all_small_trace(n: usize) -> Vec<Observation> {
    (0..n)
        .map(|_| Observation::new(THREADS, 0.1, 0.01).with_dims(64, 64))
        .collect()
}

/// A batch of uniformly large items.
fn all_large_trace(n: usize) -> Vec<Observation> {
    (0..n)
        .map(|_| Observation::new(THREADS, 4.0, 0.4).with_dims(2000, 2000))
        .collect()
}

fn canned_traces() -> Vec<(&'static str, Vec<Observation>)> {
    vec![
        ("healthy", healthy_trace(5)),
        ("half-speed core", half_speed_trace(5)),
        ("lost core", lost_core_trace(5)),
        ("all-small batch", all_small_trace(5)),
        ("all-large batch", all_large_trace(5)),
    ]
}

/// Replay `trace` through a fresh controller and return every
/// post-observation choice.
fn replay(seed: u64, trace: &[Observation]) -> Vec<SplitChoice> {
    let mut ctl = controller(seed);
    trace
        .iter()
        .map(|obs| {
            ctl.observe(obs);
            ctl.choice()
        })
        .collect()
}

#[test]
fn every_canned_trace_replays_bitwise_deterministically() {
    for (name, trace) in canned_traces() {
        let a = replay(7, &trace);
        let b = replay(7, &trace);
        assert_eq!(a, b, "same seed + same trace must replay bitwise: {name}");
        // a different controller seed shifts the exploration dither —
        // the trajectories must not be bitwise identical
        let c = replay(8, &trace);
        assert!(
            a.iter()
                .zip(&c)
                .any(|(x, y)| x.dratio.to_bits() != y.dratio.to_bits()),
            "the dither must depend on the policy seed: {name}"
        );
    }
}

#[test]
fn every_chosen_split_stays_inside_the_validated_bounds() {
    let p = policy(3);
    for (name, trace) in canned_traces() {
        for (i, choice) in replay(3, &trace).into_iter().enumerate() {
            assert!(
                choice.dratio >= p.dratio_min && choice.dratio <= p.dratio_max,
                "{name} step {i}: dratio {} escaped [{}, {}]",
                choice.dratio,
                p.dratio_min,
                p.dratio_max
            );
            assert!(
                choice.batch_small_cutoff >= p.cutoff_min
                    && choice.batch_small_cutoff <= p.cutoff_max,
                "{name} step {i}: cutoff {} escaped [{}, {}]",
                choice.batch_small_cutoff,
                p.cutoff_min,
                p.cutoff_max
            );
            assert!(
                choice.batch_threads_per_item >= 1 && choice.batch_threads_per_item <= THREADS,
                "{name} step {i}: threads-per-item {} not in 1..=threads",
                choice.batch_threads_per_item
            );
            // the exact knobs the controller chose must pass the same
            // validation path every fixed configuration goes through
            calu::core::CaluConfig::new(64)
                .with_threads(4)
                .with_dratio(choice.dratio)
                .with_steal_order(choice.steal_order)
                .with_adaptive(p.clone())
                .validate()
                .unwrap_or_else(|e| panic!("{name} step {i}: chosen split fails validate: {e}"));
        }
    }
}

#[test]
fn more_idle_always_buys_a_larger_dynamic_share() {
    // healthy < half-speed < lost core, strictly, after the same number
    // of observations — the controller's monotonicity contract
    let healthy = replay(5, &healthy_trace(3)).pop().unwrap().dratio;
    let degraded = replay(5, &half_speed_trace(3)).pop().unwrap().dratio;
    let lost = replay(5, &lost_core_trace(3)).pop().unwrap().dratio;
    assert!(
        healthy < degraded && degraded < lost,
        "dynamic share must grow with pressure: healthy {healthy}, \
         half-speed {degraded}, lost {lost}"
    );
    // and the healthy trace drifts *down* from the seed: tolerated idle
    // pulls back toward static locality
    let seed = controller(5).seed_choice().dratio;
    assert!(
        healthy < seed,
        "a healthy machine must relax toward the static split \
         (seed {seed}, settled {healthy})"
    );
}

#[test]
fn the_size_histogram_drives_the_batch_cutoffs() {
    let small = replay(11, &all_small_trace(5)).pop().unwrap();
    let large = replay(11, &all_large_trace(5)).pop().unwrap();
    assert!(
        small.batch_small_cutoff < large.batch_small_cutoff,
        "an all-small mix must choose a tighter cutoff ({} vs {})",
        small.batch_small_cutoff,
        large.batch_small_cutoff
    );
    assert_eq!(
        small.batch_threads_per_item, 1,
        "tiny items co-schedule whole on one worker"
    );
    assert!(
        large.batch_threads_per_item > 1,
        "a majority-large mix must widen the per-item groups, got {}",
        large.batch_threads_per_item
    );
}

#[test]
fn heavy_remote_stealing_flips_the_sweep_direction_and_back() {
    let mut ctl = controller(2);
    assert_eq!(ctl.choice().steal_order, StealOrder::NearestFirst);
    ctl.observe(&Observation::new(THREADS, 1.0, 0.8).with_remote_fraction(0.8));
    assert_eq!(
        ctl.choice().steal_order,
        StealOrder::FarthestFirst,
        "mostly-remote steals mean nearby victims are drained"
    );
    ctl.observe(&Observation::new(THREADS, 1.0, 0.8).with_remote_fraction(0.1));
    assert_eq!(
        ctl.choice().steal_order,
        StealOrder::NearestFirst,
        "locality restored, sweep near first again"
    );
}

#[test]
fn per_run_mode_reseeds_while_cross_run_accumulates() {
    let mut cross = AdaptiveController::new(policy(9).cross_run(), &topo(), THREADS);
    let mut per_run = AdaptiveController::new(policy(9).per_run(), &topo(), THREADS);
    assert_eq!(cross.policy().mode, AdaptiveMode::CrossRun);
    assert_eq!(per_run.policy().mode, AdaptiveMode::PerRun);
    for obs in lost_core_trace(4) {
        cross.observe(&obs);
        per_run.observe(&obs);
    }
    let seed = cross.seed_choice().dratio;
    assert!(
        cross.plan_choice().dratio > seed,
        "cross-run feedback reaches the next plan in memory"
    );
    assert_eq!(
        per_run.plan_choice().dratio,
        seed,
        "per-run mode without a cache re-seeds every plan from topology"
    );
}

#[test]
fn the_observation_cache_carries_adaptation_across_processes() {
    let dir = std::env::temp_dir().join(format!("calu-adaptive-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let cache = dir.join("host-cache");
    let p = policy(13).with_cache(&cache);
    // "process one": learn under a lost core, persisting every step
    let mut first = AdaptiveController::new(p.clone(), &topo(), THREADS);
    for obs in lost_core_trace(4) {
        first.observe(&obs);
    }
    let learned = first.choice();
    assert!(cache.exists(), "observations must persist to the cache");
    // "process two": a *per-run* controller on the same host starts
    // from the persisted history, not the topology seed
    let mut second = AdaptiveController::new(p.clone().per_run(), &topo(), THREADS);
    assert_eq!(
        second.plan_choice(),
        learned,
        "a new process must plan under the persisted split"
    );
    // a corrupt cache falls back to the topology seed, not an error
    std::fs::write(&cache, "not a calu cache\n").unwrap();
    let mut third = AdaptiveController::new(p.per_run(), &topo(), THREADS);
    assert_eq!(third.plan_choice(), third.seed_choice());
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// End-to-end: the controller through the facade, on both backends.
// ---------------------------------------------------------------------

#[test]
fn the_first_adaptive_plan_is_the_topology_seed_on_both_backends() {
    // threaded: seeded from the detected host topology
    let threaded = Solver::new(MatrixSource::uniform(96, 7))
        .tile(16)
        .threads(4)
        .adaptive(policy(21));
    let plan = threaded.plan().unwrap();
    let a = plan.adaptation().expect("adaptive plans carry their split");
    assert_eq!(a.chosen, a.seed, "no observations yet: chosen == seed");
    assert_eq!(a.observations, 0);
    let reference = AdaptiveController::new(policy(21), &CpuTopology::detect(), 4);
    assert_eq!(a.seed, reference.seed_choice(), "threaded seed = detect()");

    // simulated: seeded from the modelled machine, not the host
    let machine = MachineConfig::intel_xeon_16(NoiseConfig::off());
    let sim = Solver::new(MatrixSource::shape(1600, 1600))
        .backend(SimulatedBackend::new(machine.clone()))
        .adaptive(policy(21));
    let plan = sim.plan().unwrap();
    let a = plan.adaptation().unwrap();
    let reference = AdaptiveController::new(policy(21), &calu::sim::machine_topology(&machine), 16);
    assert_eq!(a.seed, reference.seed_choice(), "simulated seed = machine");
    assert_eq!(a.chosen, a.seed);
}

#[test]
fn simulated_end_to_end_adaptation_replays_bitwise() {
    let machine = MachineConfig::intel_xeon_16(NoiseConfig::off());
    let trajectory = || {
        let s = Solver::new(MatrixSource::shape(3200, 3200))
            .backend(SimulatedBackend::new(machine.clone()))
            .adaptive(policy(42));
        (0..4)
            .map(|_| {
                let r = s.run().unwrap();
                let a = r.adaptation.expect("adaptive runs report their split");
                assert_eq!(a.steps.len(), a.observations, "trace grows with feedback");
                a.chosen.dratio.to_bits()
            })
            .collect::<Vec<_>>()
    };
    let a = trajectory();
    assert_eq!(a, trajectory(), "same seed, same machine: same trajectory");
    assert!(
        a.windows(2).any(|w| w[0] != w[1]),
        "feedback must actually move the split across runs: {a:?}"
    );
}

#[test]
fn threaded_adaptive_run_reports_its_split_and_keeps_adapting() {
    let s = Solver::new(MatrixSource::uniform(96, 7))
        .tile(16)
        .threads(4)
        .verify(false)
        .adaptive(policy(33));
    let first = s.run().unwrap();
    let a1 = first.adaptation.expect("adaptive runs report their split");
    assert_eq!(a1.observations, 0, "first run plans from the seed");
    assert!(!a1.adapted(), "nothing observed yet");
    let second = s.run().unwrap();
    let a2 = second.adaptation.unwrap();
    assert_eq!(a2.observations, 1, "the first run fed the controller");
    assert_eq!(a2.steps.len(), 1);
    assert_eq!(
        s.adaptive_split().unwrap().dratio,
        s.plan().unwrap().adaptation().unwrap().chosen.dratio,
        "the accessor and the next plan agree"
    );
    // the dratio the report's scheduler advertises is the chosen one
    match second.scheduler {
        calu::sched::SchedulerKind::Hybrid { dratio } => {
            assert_eq!(dratio.to_bits(), a2.chosen.dratio.to_bits())
        }
        other => panic!("adaptive runs execute Hybrid, got {other:?}"),
    }
}

#[test]
fn a_served_slow_worker_converges_the_controller_and_reconfigure_applies_it() {
    // a service under a persistently half-speed worker: completed jobs
    // feed the controller (idle + rescued pressure), so the solver's
    // next plan — and therefore a live reconfigure — runs more
    // dynamically than the seed split
    let solver = Solver::new(MatrixSource::shape(96, 96))
        .tile(16)
        .threads(4)
        .verify(false)
        .adaptive(policy(55))
        .fault_plan(FaultPlan::off().slow_worker(1, 8.0));
    let service = solver.serve().unwrap();
    let seed = solver.adaptive_split().unwrap();
    assert_eq!(
        service.current_split().dratio,
        seed.dratio,
        "generation 0 runs the seed split"
    );
    for i in 0..6 {
        let h = service
            .submit(JobSpec::uniform(96, 96, 100 + i), JobClass::Batch)
            .unwrap();
        h.wait().unwrap();
    }
    let adapted = solver.adaptive_split().unwrap();
    assert!(
        adapted.dratio > seed.dratio,
        "a slow worker's idle + rescues must grow the dynamic share \
         (seed {}, adapted {})",
        seed.dratio,
        adapted.dratio
    );
    // live reconfigure re-plans through the same solver: the new pool
    // generation picks up the adapted split, visibly
    let generation = solver.reconfigure(&service).unwrap();
    assert_eq!(generation, 1);
    assert_eq!(
        service.current_split().dratio,
        solver.adaptive_split().unwrap().dratio,
        "the reconfigured pool runs the controller's current split"
    );
    service.drain();
}
