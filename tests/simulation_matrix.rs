//! Cross-crate integration: the simulator × scheduler × machine matrix,
//! checking the paper's qualitative claims hold wherever the paper makes
//! them.

use calu::dag::TaskGraph;
use calu::matrix::{Layout, ProcessGrid};
use calu::sched::SchedulerKind;
use calu::sim::{run, MachineConfig, NoiseConfig, SimConfig};

fn gflops(n: usize, mach: &MachineConfig, layout: Layout, sched: SchedulerKind) -> f64 {
    let grid = ProcessGrid::square_for(mach.cores()).unwrap();
    let g = TaskGraph::build_calu(n, n, 100, grid.pr());
    run(&g, &SimConfig::new(mach.clone(), layout, sched)).gflops()
}

#[test]
fn intel_ordering_static_worst_hybrid_best() {
    // Fig 6: on the Intel machine static is the least efficient; the
    // hybrid with a small dynamic share beats fully dynamic
    let mach = MachineConfig::intel_xeon_16(NoiseConfig::os_daemons(42));
    let stat = gflops(4000, &mach, Layout::BlockCyclic, SchedulerKind::Static);
    let h10 = gflops(4000, &mach, Layout::BlockCyclic, SchedulerKind::Hybrid { dratio: 0.1 });
    let dynamic = gflops(4000, &mach, Layout::BlockCyclic, SchedulerKind::Dynamic);
    assert!(stat < dynamic, "static {stat} must trail dynamic {dynamic} on Intel");
    assert!(h10 > dynamic, "hybrid(10%) {h10} must beat dynamic {dynamic}");
    assert!(h10 > stat * 1.02, "hybrid must beat static clearly");
}

#[test]
fn amd_ordering_dynamic_worst() {
    // Fig 7/10: on the NUMA machine fully dynamic scheduling loses
    let mach = MachineConfig::amd_opteron_48(NoiseConfig::os_daemons(42));
    for layout in [Layout::BlockCyclic, Layout::TwoLevelBlock] {
        let stat = gflops(5000, &mach, layout, SchedulerKind::Static);
        let h10 = gflops(5000, &mach, layout, SchedulerKind::Hybrid { dratio: 0.1 });
        let dynamic = gflops(5000, &mach, layout, SchedulerKind::Dynamic);
        assert!(dynamic < stat, "{layout}: dynamic {dynamic} must trail static {stat}");
        assert!(h10 > stat, "{layout}: hybrid {h10} must beat static {stat}");
    }
}

#[test]
fn amd_2lbl_dynamic_collapse_is_worst_case() {
    // Fig 11: the dynamic gap is largest with 2l-BL on the NUMA machine
    let mach = MachineConfig::amd_opteron_48(NoiseConfig::os_daemons(42));
    let gap = |layout| {
        let h10 = gflops(5000, &mach, layout, SchedulerKind::Hybrid { dratio: 0.1 });
        let dynamic = gflops(5000, &mach, layout, SchedulerKind::Dynamic);
        h10 / dynamic
    };
    assert!(
        gap(Layout::TwoLevelBlock) > gap(Layout::BlockCyclic),
        "2l-BL must suffer more from dynamic scheduling than BCL"
    );
}

#[test]
fn calu_beats_both_library_models() {
    // Figs 16–17
    for mach in [
        MachineConfig::intel_xeon_16(NoiseConfig::os_daemons(42)),
        MachineConfig::amd_opteron_48(NoiseConfig::os_daemons(42)),
    ] {
        let grid = ProcessGrid::square_for(mach.cores()).unwrap();
        let n = 5000;
        let calu_g = TaskGraph::build_calu(n, n, 100, grid.pr());
        let calu = run(
            &calu_g,
            &SimConfig::new(mach.clone(), Layout::BlockCyclic, SchedulerKind::Hybrid { dratio: 0.1 }),
        )
        .gflops();
        let mkl = run(
            &TaskGraph::build_gepp(n, n, 100),
            &SimConfig::new(mach.clone(), Layout::ColumnMajor, SchedulerKind::Dynamic),
        )
        .gflops();
        let plasma = run(
            &TaskGraph::build_incpiv(n, n, 100),
            &SimConfig::new(mach.clone(), Layout::TwoLevelBlock, SchedulerKind::Static),
        )
        .gflops();
        assert!(calu > mkl * 1.2, "{}: CALU {calu} vs MKL {mkl}", mach.name);
        assert!(calu > plasma * 1.1, "{}: CALU {calu} vs PLASMA {plasma}", mach.name);
        assert!(plasma > mkl, "{}: PLASMA should beat MKL's serial panel", mach.name);
    }
}

#[test]
fn dynamic_cm_profile_drains_early() {
    // Fig 14: under column-granular dynamic+CM (the paper's fully
    // dynamic implementation) the tail starves most cores
    let mach = MachineConfig::amd_opteron_with_cores(18, NoiseConfig::os_daemons(42));
    let grid = ProcessGrid::square_for(18).unwrap();
    let g = TaskGraph::build_calu(2500, 2500, 100, grid.pr());
    let cfg = SimConfig::new(mach.clone(), Layout::ColumnMajor, SchedulerKind::Dynamic)
        .with_column_granularity()
        .with_trace();
    let r = run(&g, &cfg);
    let gf = r.gflops();
    let tl = r.timeline.unwrap();
    let early = tl.busy_fraction_in_window(0.0, 0.6);
    let tail = tl.busy_fraction_in_window(0.6, 1.0);
    assert!(
        tail < 0.65 * early,
        "tail busy fraction {tail:.2} must collapse vs early {early:.2}"
    );
    // and it is the slowest configuration overall (Fig 12/13 summary)
    let hybrid = run(
        &g,
        &SimConfig::new(mach, Layout::BlockCyclic, SchedulerKind::Hybrid { dratio: 0.1 }),
    );
    assert!(gf < hybrid.gflops());
}

#[test]
fn hybrid_timeline_has_less_idle_than_static() {
    // Figs 1 vs 15
    let mach = MachineConfig::amd_opteron_with_cores(18, NoiseConfig::os_daemons(42));
    let grid = ProcessGrid::square_for(18).unwrap();
    let g = TaskGraph::build_calu(2500, 2500, 100, grid.pr());
    let idle = |sched| {
        let cfg = SimConfig::new(mach.clone(), Layout::TwoLevelBlock, sched).with_trace();
        let r = run(&g, &cfg);
        let tl = r.timeline.unwrap();
        calu::trace::TimelineMetrics::of(&tl).idle_fraction()
    };
    let static_idle = idle(SchedulerKind::Static);
    let hybrid_idle = idle(SchedulerKind::Hybrid { dratio: 0.1 });
    assert!(
        hybrid_idle < static_idle,
        "hybrid idle {hybrid_idle} must undercut static idle {static_idle}"
    );
}

#[test]
fn work_stealing_trails_hybrid() {
    // §8: random stealing ignores the left-to-right critical path
    let mach = MachineConfig::amd_opteron_48(NoiseConfig::os_daemons(42));
    let h10 = gflops(5000, &mach, Layout::BlockCyclic, SchedulerKind::Hybrid { dratio: 0.1 });
    let ws = gflops(5000, &mach, Layout::BlockCyclic, SchedulerKind::WorkStealing { seed: 9 });
    assert!(h10 > ws, "hybrid {h10} must beat work stealing {ws}");
}
