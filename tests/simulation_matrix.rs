//! Cross-crate integration: the simulator × scheduler × machine matrix,
//! checking the paper's qualitative claims hold wherever the paper makes
//! them — all through the `Solver` facade with `SimulatedBackend`.

use calu::matrix::Layout;
use calu::sched::SchedulerKind;
use calu::sim::{MachineConfig, NoiseConfig};
use calu::{Algorithm, MatrixSource, Report, SimulatedBackend, Solver};

fn simulate(n: usize, mach: &MachineConfig, layout: Layout, sched: SchedulerKind) -> Report {
    Solver::new(MatrixSource::shape(n, n))
        .layout(layout)
        .scheduler(sched)
        .backend(SimulatedBackend::new(mach.clone()))
        .run()
        .expect("simulated run")
}

fn gflops(n: usize, mach: &MachineConfig, layout: Layout, sched: SchedulerKind) -> f64 {
    simulate(n, mach, layout, sched).gflops()
}

#[test]
fn intel_ordering_static_worst_hybrid_best() {
    // Fig 6: on the Intel machine static is the least efficient; the
    // hybrid with a small dynamic share beats fully dynamic
    let mach = MachineConfig::intel_xeon_16(NoiseConfig::os_daemons(42));
    let stat = gflops(4000, &mach, Layout::BlockCyclic, SchedulerKind::Static);
    let h10 = gflops(
        4000,
        &mach,
        Layout::BlockCyclic,
        SchedulerKind::Hybrid { dratio: 0.1 },
    );
    let dynamic = gflops(4000, &mach, Layout::BlockCyclic, SchedulerKind::Dynamic);
    assert!(
        stat < dynamic,
        "static {stat} must trail dynamic {dynamic} on Intel"
    );
    assert!(
        h10 > dynamic,
        "hybrid(10%) {h10} must beat dynamic {dynamic}"
    );
    assert!(h10 > stat * 1.02, "hybrid must beat static clearly");
}

#[test]
fn amd_ordering_dynamic_worst() {
    // Fig 7/10: on the NUMA machine fully dynamic scheduling loses
    let mach = MachineConfig::amd_opteron_48(NoiseConfig::os_daemons(42));
    for layout in [Layout::BlockCyclic, Layout::TwoLevelBlock] {
        let stat = gflops(5000, &mach, layout, SchedulerKind::Static);
        let h10 = gflops(5000, &mach, layout, SchedulerKind::Hybrid { dratio: 0.1 });
        let dynamic = gflops(5000, &mach, layout, SchedulerKind::Dynamic);
        assert!(
            dynamic < stat,
            "{layout}: dynamic {dynamic} must trail static {stat}"
        );
        assert!(h10 > stat, "{layout}: hybrid {h10} must beat static {stat}");
    }
}

#[test]
fn amd_2lbl_dynamic_collapse_is_worst_case() {
    // Fig 11: the dynamic gap is largest with 2l-BL on the NUMA machine
    let mach = MachineConfig::amd_opteron_48(NoiseConfig::os_daemons(42));
    let gap = |layout| {
        let h10 = gflops(5000, &mach, layout, SchedulerKind::Hybrid { dratio: 0.1 });
        let dynamic = gflops(5000, &mach, layout, SchedulerKind::Dynamic);
        h10 / dynamic
    };
    assert!(
        gap(Layout::TwoLevelBlock) > gap(Layout::BlockCyclic),
        "2l-BL must suffer more from dynamic scheduling than BCL"
    );
}

#[test]
fn calu_beats_both_library_models() {
    // Figs 16–17
    for mach in [
        MachineConfig::intel_xeon_16(NoiseConfig::os_daemons(42)),
        MachineConfig::amd_opteron_48(NoiseConfig::os_daemons(42)),
    ] {
        let n = 5000;
        let calu = gflops(
            n,
            &mach,
            Layout::BlockCyclic,
            SchedulerKind::Hybrid { dratio: 0.1 },
        );
        let mkl = Solver::new(MatrixSource::shape(n, n))
            .algorithm(Algorithm::Gepp)
            .layout(Layout::ColumnMajor)
            .scheduler(SchedulerKind::Dynamic)
            .backend(SimulatedBackend::new(mach.clone()))
            .run()
            .unwrap()
            .gflops();
        let plasma = Solver::new(MatrixSource::shape(n, n))
            .algorithm(Algorithm::IncPiv)
            .layout(Layout::TwoLevelBlock)
            .scheduler(SchedulerKind::Static)
            .backend(SimulatedBackend::new(mach.clone()))
            .run()
            .unwrap()
            .gflops();
        assert!(calu > mkl * 1.2, "{}: CALU {calu} vs MKL {mkl}", mach.name);
        assert!(
            calu > plasma * 1.1,
            "{}: CALU {calu} vs PLASMA {plasma}",
            mach.name
        );
        assert!(
            plasma > mkl,
            "{}: PLASMA should beat MKL's serial panel",
            mach.name
        );
    }
}

#[test]
fn dynamic_cm_profile_drains_early() {
    // Fig 14: under column-granular dynamic+CM (the paper's fully
    // dynamic implementation) the tail starves most cores
    let mach = MachineConfig::amd_opteron_with_cores(18, NoiseConfig::os_daemons(42));
    let r = Solver::new(MatrixSource::shape(2500, 2500))
        .layout(Layout::ColumnMajor)
        .scheduler(SchedulerKind::Dynamic)
        .trace(true)
        .backend(SimulatedBackend::new(mach.clone()).column_granular())
        .run()
        .unwrap();
    let gf = r.gflops();
    let tl = r.timeline.unwrap();
    let early = tl.busy_fraction_in_window(0.0, 0.6);
    let tail = tl.busy_fraction_in_window(0.6, 1.0);
    assert!(
        tail < 0.65 * early,
        "tail busy fraction {tail:.2} must collapse vs early {early:.2}"
    );
    // and it is the slowest configuration overall (Fig 12/13 summary)
    let hybrid = simulate(
        2500,
        &mach,
        Layout::BlockCyclic,
        SchedulerKind::Hybrid { dratio: 0.1 },
    );
    assert!(gf < hybrid.gflops());
}

#[test]
fn hybrid_timeline_has_less_idle_than_static() {
    // Figs 1 vs 15 — the unified report carries per-thread idle directly
    let mach = MachineConfig::amd_opteron_with_cores(18, NoiseConfig::os_daemons(42));
    let idle = |sched| {
        let r = Solver::new(MatrixSource::shape(2500, 2500))
            .layout(Layout::TwoLevelBlock)
            .scheduler(sched)
            .backend(SimulatedBackend::new(mach.clone()))
            .run()
            .unwrap();
        r.schedule.total_idle() / (r.makespan * r.threads as f64)
    };
    let static_idle = idle(SchedulerKind::Static);
    let hybrid_idle = idle(SchedulerKind::Hybrid { dratio: 0.1 });
    assert!(
        hybrid_idle < static_idle,
        "hybrid idle {hybrid_idle} must undercut static idle {static_idle}"
    );
}

#[test]
fn work_stealing_trails_hybrid() {
    // §8: random stealing ignores the left-to-right critical path
    let mach = MachineConfig::amd_opteron_48(NoiseConfig::os_daemons(42));
    let h10 = gflops(
        5000,
        &mach,
        Layout::BlockCyclic,
        SchedulerKind::Hybrid { dratio: 0.1 },
    );
    let ws_report = simulate(
        5000,
        &mach,
        Layout::BlockCyclic,
        SchedulerKind::WorkStealing { seed: 9 },
    );
    assert!(
        h10 > ws_report.gflops(),
        "hybrid {h10} must beat work stealing"
    );
    // and the report must attribute pops to steals
    assert!(
        ws_report.schedule.queue_sources().stolen > 0,
        "steals recorded"
    );
}
