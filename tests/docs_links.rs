//! Link check for the repo's markdown documentation pages.
//!
//! `cargo doc -D warnings` (the CI docs job) catches broken *intra-doc*
//! links in rustdoc, but nothing validates the standalone markdown
//! front door. This test walks every `](...)` target in the checked
//! pages and asserts that relative links point at files that exist, so
//! a moved crate or renamed doc fails CI instead of rotting quietly.

use std::path::{Path, PathBuf};

/// The documentation pages under link check. README and ARCHITECTURE
/// are the front door — their absence is itself a failure.
const PAGES: &[&str] = &[
    "README.md",
    "docs/ARCHITECTURE.md",
    "ROADMAP.md",
    "CHANGES.md",
];

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

/// Extract every inline markdown link target: the `target` of
/// `[text](target)`. Skips images' size suffixes and reference-style
/// definitions (the repo uses inline links only).
fn link_targets(markdown: &str) -> Vec<String> {
    let mut targets = Vec::new();
    let bytes = markdown.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b']' && i + 1 < bytes.len() && bytes[i + 1] == b'(' {
            let start = i + 2;
            if let Some(off) = markdown[start..].find(')') {
                targets.push(markdown[start..start + off].trim().to_string());
                i = start + off;
            }
        }
        i += 1;
    }
    targets
}

#[test]
fn markdown_pages_exist_and_their_relative_links_resolve() {
    let root = repo_root();
    let mut broken: Vec<String> = Vec::new();
    for page in PAGES {
        let path = root.join(page);
        let Ok(text) = std::fs::read_to_string(&path) else {
            broken.push(format!("{page}: page missing"));
            continue;
        };
        let base = path.parent().unwrap_or(Path::new("."));
        for target in link_targets(&text) {
            // external links and pure in-page anchors are out of scope
            if target.starts_with("http://")
                || target.starts_with("https://")
                || target.starts_with('#')
                || target.is_empty()
            {
                continue;
            }
            // strip an in-file anchor from a relative path
            let file_part = target.split('#').next().unwrap_or(&target);
            let resolved = base.join(file_part);
            if !resolved.exists() {
                broken.push(format!("{page}: broken link `{target}`"));
            }
        }
    }
    assert!(
        broken.is_empty(),
        "broken documentation links:\n{}",
        broken.join("\n")
    );
}

#[test]
fn front_door_covers_the_advertised_entry_points() {
    // The README must mention the public API surface it exists to
    // explain; a rename that forgets the front door fails here.
    let readme = std::fs::read_to_string(repo_root().join("README.md"))
        .expect("README.md is the repo front door; it must exist");
    for needle in [
        "Solver",
        "Solver::batch",
        "ThreadedBackend",
        "SimulatedBackend",
        "cargo test",
        "perf_smoke",
        "QueueDiscipline",
        "FaultPlan",
    ] {
        assert!(
            readme.contains(needle),
            "README.md no longer mentions `{needle}`"
        );
    }
    let arch = std::fs::read_to_string(repo_root().join("docs/ARCHITECTURE.md"))
        .expect("docs/ARCHITECTURE.md must exist");
    for needle in ["Backend", "Chase-Lev", "dratio", "steal", "rescue"] {
        assert!(
            arch.contains(needle),
            "docs/ARCHITECTURE.md no longer mentions `{needle}`"
        );
    }
}
