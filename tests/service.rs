//! End-to-end tests of the service layer: `Solver::serve` and the
//! `FactorService` lifecycle — concurrent mixed-class submission,
//! bitwise parity with solo runs, class ordering under backlog,
//! cancellation races, graceful drain, and the streaming/warm batch
//! entry points built on top.

use std::sync::atomic::{AtomicUsize, Ordering};

use calu::{
    service_batch, Algorithm, JobClass, JobSpec, JobStatus, MatrixSource, ServeError,
    ServiceConfig, Solver,
};

/// The shared knobs every test's solver uses (small tiles so even tiny
/// jobs produce a few tasks).
fn solver(src: MatrixSource) -> Solver {
    Solver::new(src).tile(16).threads(3).dratio(0.5)
}

#[test]
fn concurrent_mixed_class_jobs_factor_bitwise_identically_to_solo_runs() {
    // the acceptance run: 3 submitter threads × mixed classes on one
    // service, every job's factors bitwise-equal to a solo Solver::run
    // of the same source
    let service = solver(MatrixSource::shape(8, 8)).serve().unwrap();
    let classes = [JobClass::Interactive, JobClass::Batch, JobClass::Background];
    let done = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for t in 0..3u64 {
            let service = &service;
            let done = &done;
            s.spawn(move || {
                for j in 0..4u64 {
                    let n = [48usize, 64, 96][((t + j) % 3) as usize];
                    let seed = 1000 + t * 10 + j;
                    let class = classes[((t + j) % 3) as usize];
                    let handle = service
                        .submit(JobSpec::uniform(n, n, seed), class)
                        .expect("quota is far above 12 jobs");
                    let report = handle.wait().unwrap();
                    assert_eq!(report.backend, "serve");
                    assert_eq!(report.dims, (n, n));

                    let solo = solver(MatrixSource::uniform(n, seed)).run().unwrap();
                    let (fj, fs) = (
                        report.factorization.as_ref().unwrap(),
                        solo.factorization.as_ref().unwrap(),
                    );
                    let ctx = format!("n={n} seed={seed} class={class}");
                    assert_eq!(fj.lu.as_slice(), fs.lu.as_slice(), "packed LU bits, {ctx}");
                    assert_eq!(fj.perm.pivots(), fs.perm.pivots(), "pivot rows, {ctx}");
                    assert_eq!(
                        report.residual.unwrap().to_bits(),
                        solo.residual.unwrap().to_bits(),
                        "residual bits, {ctx}"
                    );
                    done.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });
    assert_eq!(done.load(Ordering::Relaxed), 12);
    service.drain();
    assert_eq!(service.pending(), 0);
    assert_eq!(service.queued(), 0);
}

#[test]
fn interactive_jobs_jump_a_full_background_backlog() {
    // class ordering: with the lanes stuffed with Background work, an
    // Interactive job is served as soon as a worker frees up — it must
    // complete while Background jobs are still waiting in the queue
    let service = Solver::new(MatrixSource::shape(8, 8))
        .tile(32)
        .threads(2)
        .verify(false)
        .serve()
        .unwrap();
    let backlog: Vec<_> = (0..24)
        .map(|i| {
            service
                .submit(JobSpec::uniform(256, 256, 7000 + i), JobClass::Background)
                .unwrap()
        })
        .collect();
    let interactive = service
        .submit(JobSpec::uniform(48, 48, 9999), JobClass::Interactive)
        .unwrap();
    let report = interactive.wait().unwrap();
    assert!(report.factorization.is_some());
    assert!(
        service.queued_in(JobClass::Background) > 0,
        "the interactive job completed only after the whole background \
         backlog — class priority was not honored"
    );
    for h in backlog {
        h.wait().unwrap();
    }
    service.drain();
}

#[test]
fn drain_finishes_jobs_queued_in_every_class_with_none_stranded() {
    let service = Solver::new(MatrixSource::shape(8, 8))
        .tile(16)
        .threads(2)
        .verify(false)
        .serve()
        .unwrap();
    let classes = [JobClass::Interactive, JobClass::Batch, JobClass::Background];
    let handles: Vec<_> = (0..9)
        .map(|i| {
            service
                .submit(
                    JobSpec::uniform(64, 64, 300 + i as u64),
                    classes[i % classes.len()],
                )
                .unwrap()
        })
        .collect();
    service.drain();
    assert!(service.is_draining());
    assert_eq!(service.pending(), 0, "drain left jobs pending");
    assert_eq!(service.queued(), 0, "drain left jobs queued");
    for (i, h) in handles.into_iter().enumerate() {
        let r = h.wait();
        assert!(r.is_ok(), "job {i} was stranded by drain: {:?}", r.err());
    }
    // drain is idempotent
    service.drain();
}

#[test]
fn cancel_wins_on_queued_jobs_and_loses_races_to_completion() {
    // one worker: the first (large) job occupies it, so the second is
    // deterministically still queued when we cancel it
    let service = Solver::new(MatrixSource::shape(8, 8))
        .tile(16)
        .threads(1)
        .verify(false)
        .serve()
        .unwrap();
    let blocker = service
        .submit(JobSpec::uniform(256, 256, 1), JobClass::Batch)
        .unwrap();
    let victim = service
        .submit(JobSpec::uniform(64, 64, 2), JobClass::Batch)
        .unwrap();
    assert!(service.cancel(&victim), "queued job must be cancellable");
    assert_eq!(victim.try_status(), JobStatus::Cancelled);
    assert!(matches!(victim.wait(), Err(ServeError::Cancelled)));
    // double-cancel (already removed) reports false
    blocker.wait().unwrap();

    // racing completion: a job that already finished cannot be cancelled
    let finished = service
        .submit(JobSpec::uniform(48, 48, 3), JobClass::Interactive)
        .unwrap();
    while finished.try_status() == JobStatus::Queued || finished.try_status() == JobStatus::Running
    {
        std::thread::yield_now();
    }
    assert!(
        !service.cancel(&finished),
        "a completed job must not report a successful cancel"
    );
    assert!(finished.wait().is_ok(), "the race resolves to completion");
    service.drain();
}

#[test]
fn submit_after_drain_is_rejected() {
    let service = solver(MatrixSource::shape(8, 8)).serve().unwrap();
    service.drain();
    let err = service
        .submit(JobSpec::uniform(32, 32, 1), JobClass::Interactive)
        .unwrap_err();
    assert!(matches!(err, ServeError::ShuttingDown), "{err}");
}

#[test]
fn invalid_specs_never_reach_the_pool() {
    let service = solver(MatrixSource::shape(8, 8)).serve().unwrap();
    let err = service
        .submit(JobSpec::uniform(0, 64, 1), JobClass::Batch)
        .unwrap_err();
    assert!(matches!(err, ServeError::Invalid(_)), "{err}");
    assert_eq!(service.pending(), 0, "rejected job counted as pending");
    assert_eq!(service.queued(), 0, "rejected job reached the pool queue");
    service.drain();
}

#[test]
fn admission_control_rejects_over_quota_submissions_with_busy() {
    let service = Solver::new(MatrixSource::shape(8, 8))
        .tile(16)
        .threads(1)
        .verify(false)
        .serve_with(ServiceConfig {
            max_pending: 2,
            ..ServiceConfig::default()
        })
        .unwrap();
    // 1 worker: a large blocker plus one queued job fill the quota
    let h1 = service
        .submit(JobSpec::uniform(256, 256, 1), JobClass::Batch)
        .unwrap();
    let h2 = service
        .submit(JobSpec::uniform(64, 64, 2), JobClass::Batch)
        .unwrap();
    let err = service
        .submit(JobSpec::uniform(64, 64, 3), JobClass::Batch)
        .unwrap_err();
    assert!(
        matches!(err, ServeError::Busy { quota: 2, .. }),
        "third job over max_pending=2 must be refused: {err}"
    );
    h1.wait().unwrap();
    h2.wait().unwrap();
    // quota freed: admission works again
    service
        .submit(JobSpec::uniform(64, 64, 4), JobClass::Batch)
        .unwrap()
        .wait()
        .unwrap();
    service.drain();
}

#[test]
fn events_stream_reports_each_terminal_state_once_and_ends_on_drain() {
    let service = Solver::new(MatrixSource::shape(8, 8))
        .tile(16)
        .threads(1)
        .verify(false)
        .serve()
        .unwrap();
    let events = service.events();
    let blocker = service
        .submit(JobSpec::uniform(256, 256, 1), JobClass::Batch)
        .unwrap();
    let doomed = service
        .submit(JobSpec::uniform(64, 64, 2), JobClass::Background)
        .unwrap();
    let ok = service
        .submit(JobSpec::uniform(64, 64, 3), JobClass::Interactive)
        .unwrap();
    assert!(service.cancel(&doomed));
    service.drain();
    // ends: the drain closed the stream; no Degraded events without faults
    let seen: Vec<_> = events
        .map(|e| match e {
            calu::ServiceEvent::Job(j) => j,
            other => panic!("unexpected non-job event on a healthy service: {other:?}"),
        })
        .collect();
    assert_eq!(seen.len(), 3, "one terminal event per job");
    let status_of = |id| seen.iter().find(|e| e.id == id).unwrap().status;
    assert_eq!(status_of(blocker.id()), JobStatus::Done);
    assert_eq!(status_of(doomed.id()), JobStatus::Cancelled);
    assert_eq!(status_of(ok.id()), JobStatus::Done);
    let mut ids: Vec<_> = seen.iter().map(|e| e.id).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), 3, "no id reported twice");
}

#[test]
fn batch_iter_streams_and_matches_solo_runs_bitwise() {
    // a mixed sweep (co-scheduled small items and a co-operative large
    // one) through the streaming entry point, sources consumed lazily
    let dims_seeds = [
        (48usize, 501u64),
        (450, 502),
        (64, 503),
        (96, 504),
        (72, 505),
    ];
    let make = || {
        Solver::new(MatrixSource::shape(8, 8))
            .tile(16)
            .threads(3)
            .dratio(0.5)
            .batch_small_cutoff(100)
    };
    let batch = make()
        .batch_iter(
            dims_seeds
                .iter()
                .map(|&(n, seed)| MatrixSource::uniform(n, seed)),
        )
        .unwrap();
    assert_eq!(batch.backend, "serve");
    assert_eq!(batch.len(), 5);
    assert!(!batch.pool_reused, "batch_iter spawns its own pool");
    assert_eq!(batch.co_scheduled, 4, "items ≤ 100 are co-scheduled");
    assert!(batch.wall_secs > 0.0 && batch.items_per_sec() > 0.0);
    for (&(n, seed), item) in dims_seeds.iter().zip(&batch.items) {
        assert_eq!(item.dims, (n, n), "results come back in input order");
        let solo = Solver::new(MatrixSource::uniform(n, seed))
            .tile(16)
            .threads(3)
            .dratio(0.5)
            .run()
            .unwrap();
        let (fb, fs) = (
            item.factorization.as_ref().unwrap(),
            solo.factorization.as_ref().unwrap(),
        );
        assert_eq!(fb.lu.as_slice(), fs.lu.as_slice(), "n={n}");
        assert_eq!(fb.perm.pivots(), fs.perm.pivots(), "n={n}");
        assert_eq!(
            item.residual.unwrap().to_bits(),
            solo.residual.unwrap().to_bits(),
            "n={n}"
        );
    }
}

#[test]
fn one_service_serves_lu_and_cholesky_jobs_side_by_side() {
    // the kernel-set e2e: concurrent submitters push LU and Cholesky
    // jobs into one warm pool; every result must carry its own
    // algorithm's report shape and match the solo run of the same
    // source bitwise
    let service = solver(MatrixSource::shape(8, 8)).serve().unwrap();
    let done = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for t in 0..3u64 {
            let service = &service;
            let done = &done;
            s.spawn(move || {
                for j in 0..4u64 {
                    let n = [48usize, 64, 96][((t + j) % 3) as usize];
                    let seed = 2000 + t * 10 + j;
                    let cholesky = (t + j) % 2 == 0;
                    let spec = if cholesky {
                        JobSpec::spd_uniform(n, seed)
                    } else {
                        JobSpec::uniform(n, n, seed)
                    };
                    let handle = service.submit(spec, JobClass::Batch).unwrap();
                    let report = handle.wait().unwrap();
                    let ctx = format!("n={n} seed={seed} cholesky={cholesky}");
                    let solo_src = if cholesky {
                        MatrixSource::spd_uniform(n, seed)
                    } else {
                        MatrixSource::uniform(n, seed)
                    };
                    let solo = if cholesky {
                        solver(solo_src).algorithm(Algorithm::Cholesky).run()
                    } else {
                        solver(solo_src).run()
                    }
                    .unwrap();
                    assert_eq!(report.algorithm, solo.algorithm, "{ctx}");
                    assert_eq!(
                        report.factorization.as_ref().unwrap().lu.as_slice(),
                        solo.factorization.as_ref().unwrap().lu.as_slice(),
                        "packed factor bits, {ctx}"
                    );
                    assert_eq!(
                        report.residual.unwrap().to_bits(),
                        solo.residual.unwrap().to_bits(),
                        "residual bits, {ctx}"
                    );
                    if cholesky {
                        assert!(report.residual.unwrap() < 1e-13, "{ctx}");
                        assert!(report.growth_factor.is_none(), "{ctx}");
                        assert!(
                            report.nominal_flops < solo_lu_flops(n),
                            "Cholesky bills n³/3, not LU's 2n³/3, {ctx}"
                        );
                    } else {
                        assert!(report.residual.unwrap() < 1e-12, "{ctx}");
                        assert!(report.growth_factor.is_some(), "{ctx}");
                    }
                    done.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });
    assert_eq!(done.load(Ordering::Relaxed), 12);
    service.drain();
}

/// LU's nominal flop bill for an `n × n` matrix (the mixed-service test
/// checks Cholesky jobs are billed less than this).
fn solo_lu_flops(n: usize) -> f64 {
    let nf = n as f64;
    2.0 * nf * nf * nf / 3.0
}

#[test]
fn cholesky_sweeps_flow_through_batch_iter_and_service_batch() {
    // the streaming entry points: a Cholesky solver pumps SPD sources
    // through batch_iter, and a warm service infers Cholesky from
    // SpdUniform sources in a mixed service_batch sweep
    let seeds = [801u64, 802, 803];
    let batch = Solver::new(MatrixSource::shape(8, 8))
        .algorithm(Algorithm::Cholesky)
        .tile(16)
        .threads(2)
        .dratio(0.5)
        .batch_iter(seeds.iter().map(|&s| MatrixSource::spd_uniform(64, s)))
        .unwrap();
    assert_eq!(batch.len(), 3);
    for (item, &seed) in batch.items.iter().zip(&seeds) {
        assert_eq!(item.algorithm, Algorithm::Cholesky, "seed={seed}");
        assert!(item.residual.unwrap() < 1e-13, "seed={seed}");
        assert!(item.growth_factor.is_none(), "seed={seed}");
    }

    let service = solver(MatrixSource::shape(8, 8)).serve().unwrap();
    let mixed = [
        MatrixSource::uniform(64, 811),
        MatrixSource::spd_uniform(64, 812),
    ];
    let warm = service_batch(&service, &mixed).unwrap();
    assert_eq!(warm.items[0].algorithm, Algorithm::Calu);
    assert_eq!(warm.items[1].algorithm, Algorithm::Cholesky);
    assert!(warm.items[1].residual.unwrap() < 1e-13);
    service.drain();
}

#[test]
fn service_batch_reports_warm_pool_reuse_honestly() {
    let sources: Vec<MatrixSource> = (0..6).map(|i| MatrixSource::uniform(64, 600 + i)).collect();
    let s = Solver::new(MatrixSource::shape(8, 8))
        .tile(16)
        .threads(2)
        .dratio(0.5);
    let service = s.serve().unwrap();
    // warm the pool with one sweep, then measure the second
    let first = service_batch(&service, &sources).unwrap();
    let warm = service_batch(&service, &sources).unwrap();
    for b in [&first, &warm] {
        assert_eq!(b.backend, "serve");
        assert!(b.pool_reused, "service sweeps run on the warm pool");
        assert_eq!(
            b.pool_spawn_secs, 0.0,
            "a warm sweep must not be billed a pool spawn"
        );
        assert_eq!(b.len(), 6);
    }
    // honest savings: the whole cold-spawn bill is saved, none deducted
    assert!(
        (warm.spawn_savings_secs() - warm.cold_spawn_secs * 6.0).abs() < 1e-15,
        "warm savings must equal cold_spawn × items"
    );
    // and the factors match the one-shot batch path bitwise
    let batch = s.batch(&sources).unwrap();
    for (w, b) in warm.items.iter().zip(&batch.items) {
        assert_eq!(
            w.factorization.as_ref().unwrap().lu.as_slice(),
            b.factorization.as_ref().unwrap().lu.as_slice()
        );
        assert_eq!(w.residual.unwrap().to_bits(), b.residual.unwrap().to_bits());
    }
    service.drain();
}
