//! Cross-crate integration: factorization correctness over the full
//! design space (layout × scheduler × threads), verified against dense
//! references — all through the unified `Solver` facade.

use calu::core::{calu_simple, gepp_factor, incpiv_factor};
use calu::matrix::{gen, ops, Layout};
use calu::Solver;

/// Factor through the facade and return the report.
fn factor(
    a: &calu::matrix::DenseMatrix,
    b: usize,
    threads: usize,
    dratio: f64,
    layout: Layout,
) -> calu::Report {
    Solver::new(a.clone())
        .tile(b)
        .threads(threads)
        .dratio(dratio)
        .layout(layout)
        .run()
        .expect("factor")
}

#[test]
fn design_space_cross_product() {
    let n = 72;
    let a = gen::uniform(n, n, 100);
    for layout in [
        Layout::BlockCyclic,
        Layout::TwoLevelBlock,
        Layout::ColumnMajor,
    ] {
        for threads in [1usize, 2, 4] {
            for dratio in [0.0, 0.1, 1.0] {
                let r = factor(&a, 16, threads, dratio, layout);
                let resid = r.residual.unwrap();
                assert!(
                    resid < 1e-12,
                    "residual {resid} for layout {layout} threads {threads} dratio {dratio}"
                );
                // the queue split must follow the dratio extremes
                let q = r.schedule.queue_sources();
                if dratio == 0.0 {
                    assert_eq!(q.global, 0, "fully static run used the dynamic queue");
                }
                if dratio == 1.0 {
                    assert_eq!(q.local, 0, "fully dynamic run used static queues");
                }
            }
        }
    }
}

#[test]
fn all_drivers_agree_on_the_solution() {
    let n = 64;
    let a = gen::uniform(n, n, 101);
    let x_true = gen::uniform(n, 1, 102);
    let rhs = ops::matmul(&a, &x_true);

    let x_calu = factor(&a, 16, 3, 0.1, Layout::BlockCyclic)
        .factorization
        .unwrap()
        .solve(&rhs);
    let x_simple = calu_simple(&a, 16, 2).solve(&rhs);
    let x_gepp = gepp_factor(&a, 16).solve(&rhs);
    let x_incpiv = incpiv_factor(&a, 16).solve(&rhs);

    for (name, x) in [
        ("threaded CALU", &x_calu),
        ("simple CALU", &x_simple),
        ("GEPP", &x_gepp),
        ("incpiv", &x_incpiv),
    ] {
        assert!(x.approx_eq(&x_true, 1e-7), "{name} diverged");
    }
}

#[test]
fn tournament_pivoting_matches_gepp_stability_on_random() {
    for seed in [1u64, 2, 3] {
        let a = gen::uniform(96, 96, seed);
        let calu_growth = factor(&a, 16, 4, 0.1, Layout::BlockCyclic)
            .growth_factor
            .unwrap();
        let gepp = gepp_factor(&a, 16);
        let ratio = calu_growth / gepp.growth_factor(&a);
        assert!(
            ratio < 10.0,
            "tournament growth must stay near GEPP's (ratio {ratio}, seed {seed})"
        );
    }
}

#[test]
fn tall_matrices_through_every_layout() {
    let a = gen::tall_skinny(120, 40, 103);
    for layout in [
        Layout::BlockCyclic,
        Layout::TwoLevelBlock,
        Layout::ColumnMajor,
    ] {
        let r = factor(&a, 20, 2, 0.1, layout);
        assert!(r.residual.unwrap() < 1e-12, "layout {layout}");
    }
}

#[test]
fn pathological_inputs() {
    // Wilkinson growth matrix: factors fine, growth is large but finite
    let w = gen::wilkinson(48);
    let r = factor(&w, 8, 2, 0.1, Layout::BlockCyclic);
    let f = r.factorization.as_ref().unwrap();
    assert!(calu::core::verify::all_finite(&f.lu));
    assert!(
        r.residual.unwrap() < 1e-6,
        "roundoff amplified by growth is fine"
    );

    // identity: nothing to do
    let i = calu::matrix::DenseMatrix::identity(32);
    let r = factor(&i, 8, 2, 0.1, Layout::BlockCyclic);
    assert!(r.residual.unwrap() < 1e-15);

    // zero matrix: flagged singular, no panic
    let z = calu::matrix::DenseMatrix::zeros(24, 24);
    let r = factor(&z, 8, 2, 0.1, Layout::BlockCyclic);
    assert!(!r.factorization.unwrap().is_nonsingular());
}

#[test]
fn determinism_across_repeats_and_thread_counts() {
    let a = gen::uniform(80, 80, 104);
    let f2 = factor(&a, 16, 2, 0.1, Layout::BlockCyclic);
    let f4 = factor(&a, 16, 4, 0.1, Layout::BlockCyclic);
    // same grid rows (2x1 vs 2x2) may differ in TSLU chunking; identical
    // thread counts must be bitwise identical
    let f4b = factor(&a, 16, 4, 0.1, Layout::BlockCyclic);
    let (lu4, lu4b) = (
        f4.factorization.as_ref().unwrap(),
        f4b.factorization.as_ref().unwrap(),
    );
    assert!(lu4.lu.approx_eq(&lu4b.lu, 0.0));
    assert_eq!(lu4.perm.pivots(), lu4b.perm.pivots());
    // different thread counts still factor correctly
    assert!(f2.residual.unwrap() < 1e-12);
    assert!(f4.residual.unwrap() < 1e-12);
}
