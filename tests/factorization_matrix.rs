//! Cross-crate integration: factorization correctness over the full
//! design space (layout × scheduler × threads), verified against dense
//! references.

use calu::core::{calu_factor, calu_simple, gepp_factor, incpiv_factor, CaluConfig};
use calu::matrix::{gen, ops, Layout};

#[test]
fn design_space_cross_product() {
    let n = 72;
    let a = gen::uniform(n, n, 100);
    for layout in [Layout::BlockCyclic, Layout::TwoLevelBlock, Layout::ColumnMajor] {
        for threads in [1usize, 2, 4] {
            for dratio in [0.0, 0.1, 1.0] {
                let cfg = CaluConfig::new(16)
                    .with_threads(threads)
                    .with_dratio(dratio)
                    .with_layout(layout);
                let f = calu_factor(&a, &cfg).expect("factor");
                let r = f.residual(&a);
                assert!(
                    r < 1e-12,
                    "residual {r} for layout {layout} threads {threads} dratio {dratio}"
                );
            }
        }
    }
}

#[test]
fn all_drivers_agree_on_the_solution() {
    let n = 64;
    let a = gen::uniform(n, n, 101);
    let x_true = gen::uniform(n, 1, 102);
    let rhs = ops::matmul(&a, &x_true);

    let x_calu = calu_factor(&a, &CaluConfig::new(16).with_threads(3))
        .unwrap()
        .solve(&rhs);
    let x_simple = calu_simple(&a, 16, 2).solve(&rhs);
    let x_gepp = gepp_factor(&a, 16).solve(&rhs);
    let x_incpiv = incpiv_factor(&a, 16).solve(&rhs);

    for (name, x) in [
        ("threaded CALU", &x_calu),
        ("simple CALU", &x_simple),
        ("GEPP", &x_gepp),
        ("incpiv", &x_incpiv),
    ] {
        assert!(x.approx_eq(&x_true, 1e-7), "{name} diverged");
    }
}

#[test]
fn tournament_pivoting_matches_gepp_stability_on_random() {
    for seed in [1u64, 2, 3] {
        let a = gen::uniform(96, 96, seed);
        let calu = calu_factor(&a, &CaluConfig::new(16).with_threads(4)).unwrap();
        let gepp = gepp_factor(&a, 16);
        let ratio = calu.growth_factor(&a) / gepp.growth_factor(&a);
        assert!(
            ratio < 10.0,
            "tournament growth must stay near GEPP's (ratio {ratio}, seed {seed})"
        );
    }
}

#[test]
fn tall_matrices_through_every_layout() {
    let a = gen::tall_skinny(120, 40, 103);
    for layout in [Layout::BlockCyclic, Layout::TwoLevelBlock, Layout::ColumnMajor] {
        let cfg = CaluConfig::new(20).with_threads(2).with_layout(layout);
        let f = calu_factor(&a, &cfg).unwrap();
        assert!(f.residual(&a) < 1e-12, "layout {layout}");
    }
}

#[test]
fn pathological_inputs() {
    // Wilkinson growth matrix: factors fine, growth is large but finite
    let w = gen::wilkinson(48);
    let f = calu_factor(&w, &CaluConfig::new(8).with_threads(2)).unwrap();
    assert!(calu::core::verify::all_finite(&f.lu));
    assert!(f.residual(&w) < 1e-6, "roundoff amplified by growth is fine");

    // identity: nothing to do
    let i = calu::matrix::DenseMatrix::identity(32);
    let f = calu_factor(&i, &CaluConfig::new(8).with_threads(2)).unwrap();
    assert!(f.residual(&i) < 1e-15);

    // zero matrix: flagged singular, no panic
    let z = calu::matrix::DenseMatrix::zeros(24, 24);
    let f = calu_factor(&z, &CaluConfig::new(8).with_threads(2)).unwrap();
    assert!(!f.is_nonsingular());
}

#[test]
fn determinism_across_repeats_and_thread_counts() {
    let a = gen::uniform(80, 80, 104);
    let f2 = calu_factor(&a, &CaluConfig::new(16).with_threads(2)).unwrap();
    let f4 = calu_factor(&a, &CaluConfig::new(16).with_threads(4)).unwrap();
    // same grid rows (2x1 vs 2x2) may differ in TSLU chunking; identical
    // thread counts must be bitwise identical
    let f4b = calu_factor(&a, &CaluConfig::new(16).with_threads(4)).unwrap();
    assert!(f4.lu.approx_eq(&f4b.lu, 0.0));
    assert_eq!(f4.perm.pivots(), f4b.perm.pivots());
    // different thread counts still factor correctly
    assert!(f2.residual(&a) < 1e-12);
    assert!(f4.residual(&a) < 1e-12);
}
