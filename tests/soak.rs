//! Front-door soak: sustained mixed-class TCP traffic with a mid-run
//! reconfigure and a malformed-request storm, ending in a clean drain.
//!
//! Ignored by default (it deliberately runs ~20 s); CI's `soak` job
//! runs it in release with `-- --ignored`.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use calu::{MatrixSource, NetConfig, ServiceConfig, Solver};

const CLIENTS: usize = 4;
const RUN_SECS: u64 = 20;

fn connect(addr: std::net::SocketAddr) -> (BufReader<TcpStream>, TcpStream) {
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    (BufReader::new(stream.try_clone().unwrap()), stream)
}

fn roundtrip(reader: &mut BufReader<TcpStream>, writer: &mut TcpStream, req: &str) -> String {
    writeln!(writer, "{req}").expect("write");
    let mut line = String::new();
    reader.read_line(&mut line).expect("read");
    line.trim().to_string()
}

#[test]
#[ignore = "runs ~20 s of sustained traffic; CI's soak job opts in"]
fn sustained_mixed_traffic_with_reconfigure_and_storm_drains_clean() {
    let listener = Solver::new(MatrixSource::shape(64, 64))
        .tile(16)
        .threads(4)
        .dratio(0.5)
        .verify(false)
        .listen_with(
            "127.0.0.1:0",
            ServiceConfig::default(),
            NetConfig {
                max_connections: CLIENTS + 2,
                ..NetConfig::default()
            },
        )
        .unwrap();
    let addr = listener.local_addr();
    let stop = Arc::new(AtomicBool::new(false));
    let submitted = Arc::new(AtomicU64::new(0));
    let done = Arc::new(AtomicU64::new(0));
    let shed_or_busy = Arc::new(AtomicU64::new(0));

    // 4 clients, one per class mix slot: submit, poll to terminal,
    // repeat; admission Busy is backed off, never fatal
    let clients: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let stop = Arc::clone(&stop);
            let submitted = Arc::clone(&submitted);
            let done = Arc::clone(&done);
            let shed_or_busy = Arc::clone(&shed_or_busy);
            std::thread::spawn(move || {
                let (mut reader, mut writer) = connect(addr);
                let class = ["interactive", "batch", "background", "batch"][c];
                let mut seed = 10_000 * (c as u64 + 1);
                while !stop.load(Ordering::Relaxed) {
                    seed += 1;
                    let req = if seed.is_multiple_of(5) {
                        format!("submit {class} spd 64 {seed}")
                    } else {
                        format!("submit {class} uniform 96 96 {seed}")
                    };
                    let reply = roundtrip(&mut reader, &mut writer, &req);
                    if reply.starts_with("busy ") {
                        shed_or_busy.fetch_add(1, Ordering::Relaxed);
                        std::thread::sleep(Duration::from_millis(5));
                        continue;
                    }
                    if reply == "err shutting-down" {
                        break;
                    }
                    let id: u64 = reply
                        .strip_prefix("ok ")
                        .unwrap_or_else(|| panic!("client {c}: bad reply {reply:?}"))
                        .parse()
                        .unwrap();
                    submitted.fetch_add(1, Ordering::Relaxed);
                    loop {
                        let status = roundtrip(&mut reader, &mut writer, &format!("status {id}"));
                        match status.rsplit(' ').next() {
                            Some("done") => {
                                done.fetch_add(1, Ordering::Relaxed);
                                break;
                            }
                            Some("queued") | Some("running") => {
                                std::thread::sleep(Duration::from_millis(1))
                            }
                            other => panic!("client {c}: job {id} went {other:?}"),
                        }
                    }
                }
            })
        })
        .collect();

    let t0 = Instant::now();
    let half = Duration::from_secs(RUN_SECS / 2);
    std::thread::sleep(half);

    // mid-run: a live reconfigure under load...
    let generation = Solver::new(MatrixSource::shape(64, 64))
        .tile(16)
        .threads(3)
        .dratio(0.3)
        .verify(false)
        .reconfigure(listener.service())
        .unwrap();
    assert_eq!(generation, 1, "one mid-run handover");

    // ...and a malformed-request storm from a fifth connection
    {
        let (mut reader, mut writer) = connect(addr);
        for i in 0..200 {
            let reply = roundtrip(&mut reader, &mut writer, &format!("garbage request {i}"));
            assert!(reply.starts_with("err malformed"), "storm reply: {reply:?}");
        }
        let reply = roundtrip(&mut reader, &mut writer, "ping");
        assert_eq!(reply, "ok pong", "the listener serves through the storm");
    }

    std::thread::sleep(Duration::from_secs(RUN_SECS).saturating_sub(t0.elapsed()));
    stop.store(true, Ordering::Relaxed);
    for c in clients {
        c.join().expect("client thread");
    }

    // clean drain: every submitted job completed, nothing pending
    let summary = listener.service().drain();
    let (submitted, done) = (
        submitted.load(Ordering::Relaxed),
        done.load(Ordering::Relaxed),
    );
    assert_eq!(submitted, done, "every accepted job reached done");
    assert!(submitted > 0, "the soak actually submitted work");
    assert_eq!(
        summary.completed, submitted,
        "drain summary matches the traffic"
    );
    assert_eq!(listener.service().pending(), 0);
    assert_eq!(listener.service().generation(), 1);
    let stats = listener.stats();
    assert!(stats.malformed >= 200, "the storm was counted: {stats:?}");
    listener.shutdown();
    println!(
        "soak: {submitted} jobs over {RUN_SECS} s, {} busy backoffs, stats {stats:?}",
        shed_or_busy.load(Ordering::Relaxed)
    );
}
